package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTable2ProfileShape(t *testing.T) {
	var sb strings.Builder
	res, err := Table2(0.005, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.TotalMS <= 0 {
		t.Fatal("empty profile")
	}
	// The paper's structural claim: join-related work dominates, path
	// step evaluation is marginal (<10 % at any scale).
	var joinPct, stepPct float64
	for _, r := range res.Rows {
		if strings.Contains(r.Origin, "join") {
			joinPct += r.SharePct
		}
		if r.Origin == "path step" {
			stepPct += r.SharePct
		}
	}
	if joinPct < 30 {
		t.Errorf("join share %.0f%%, expected the dominant cost (paper: 45%%)", joinPct)
	}
	if stepPct > 10 {
		t.Errorf("path step share %.0f%%, expected marginal (paper: <1%%)", stepPct)
	}
	if !strings.Contains(sb.String(), "paper: 45%") {
		t.Error("report text missing the paper reference")
	}
}

func TestFigure12SmallSweep(t *testing.T) {
	rows := Figure12([]float64{0.002}, 30*time.Second, 1, nil)
	if len(rows) != 20 {
		t.Fatalf("rows: %d", len(rows))
	}
	byName := map[string]Figure12Row{}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s failed: %s", r.Query, r.Err)
		}
		byName[r.Query] = r
	}
	// Q6/Q7 are the paper's outliers; they must show large speedups at
	// any size.
	for _, q := range []string{"Q6", "Q7"} {
		if byName[q].SpeedupPct < 300 {
			t.Errorf("%s speedup %.0f%%, expected an outlier (paper: up to 10,000%%)", q, byName[q].SpeedupPct)
		}
	}
}

func TestPlanSizesAllQueries(t *testing.T) {
	rows, err := PlanSizes(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.OrderedSorts == 0 && r.Query != "Q20" {
			// Every FLWOR query realizes some order interaction under
			// ordered mode. (Q20 is a single constructor over counts.)
			t.Errorf("%s: ordered plan has no ρ?", r.Query)
		}
		if r.OptimizedOps > r.UnorderedOps {
			t.Errorf("%s: optimization grew the plan %d -> %d", r.Query, r.UnorderedOps, r.OptimizedOps)
		}
		if r.OptimizedSorts > r.UnorderedSorts {
			t.Errorf("%s: optimization added sorts", r.Query)
		}
	}
	// The Figure 6 claim for Q6. The canonical XMark text uses //site
	// (descendant-or-self + child = two extra steps over the paper's
	// /site rendering, which TestFigure6aOrderedPlan pins at exactly 5).
	q6 := rows[5]
	if q6.OrderedSorts != 7 {
		t.Errorf("Q6 ordered sorts = %d, want 7 (Figure 6a + //site)", q6.OrderedSorts)
	}
	if q6.OptimizedSorts != 0 {
		t.Errorf("Q6 optimized sorts = %d, want 0 (§7)", q6.OptimizedSorts)
	}
}

func TestCutoffReported(t *testing.T) {
	env := NewEnv(0.005)
	cfg := baselineCfg(time.Nanosecond)
	_, _, timedOut, err := Run(env, "count(doc(\"auction.xml\")//keyword)", cfg)
	if err != nil {
		t.Fatalf("cutoff should not be an error: %v", err)
	}
	if !timedOut {
		t.Error("nanosecond cutoff not reported")
	}
}

func TestAblationRuns(t *testing.T) {
	rows, err := Ablation(0.002, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no ablation rows")
	}
	// Step merging must be the decisive rewrite for Q6.
	var none, merge float64
	for _, r := range rows {
		if r.Query == "Q6" && r.Config == "none" {
			none = r.MS
		}
		if r.Query == "Q6" && r.Config == "analysis+merge" {
			merge = r.MS
		}
	}
	if none == 0 || merge == 0 || merge > none/2 {
		t.Errorf("Q6 ablation: none=%.2fms, analysis+merge=%.2fms", none, merge)
	}
}
