package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/qerr"
	"repro/internal/store"
	"repro/internal/xmarkq"
	"repro/internal/xmltree"
)

// failoverRows prices storage failover: the corpus is written as a
// replicated store (2 shards × 2 replicas across 2 directories), and
// before every timed run one replica of one part is killed, so each run
// pays the full recovery path — suspect detection at a query probe,
// replica swap, document reassembly, re-execution. Mode "failover"
// rows report p50/p95 of the recovered latency. The benchdiff gate
// skips them (recovery cost is dominated by store reassembly and page
// faults — storage noise, not a kernel-regression signal); the rows
// exist to keep failover latency visible in the trajectory file.
func failoverRows(env *Env, queryIDs []int, repeats int, noCompile bool, w io.Writer) ([]TrajectoryRow, error) {
	frag := env.Store.Frag(env.Docs["auction.xml"][0])
	base, err := os.MkdirTemp("", "xmarkbench-failover-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)
	dirs := []string{filepath.Join(base, "r0"), filepath.Join(base, "r1")}
	if err := store.WriteDocOpts(dirs, "auction.xml", frag, store.WriteOptions{Shards: 2, Replicas: 2}); err != nil {
		return nil, fmt.Errorf("failover: write store: %w", err)
	}
	st, err := store.Open(dirs, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("failover: open: %w", err)
	}
	defer st.Close()

	senv := &Env{
		Store:  xmltree.NewStore(),
		Docs:   map[string][]uint32{},
		Factor: env.Factor,
		Bytes:  env.Bytes,
		Nodes:  env.Nodes,
	}
	for _, d := range st.Docs() {
		senv.Docs[d.URI] = []uint32{senv.Store.Add(d.Frag)}
	}
	parts := len(st.Stats().Parts)

	cfg := indifferenceCfg(0)
	cfg.Compiled = !noCompile
	// The same probe the engine installs: every cooperative poll point
	// checks store health, so a killed replica surfaces mid-query as a
	// retryable corrupt error rather than at mount time.
	cfg.StoreProbe = func() func() error { return st.Health }

	// runRecovered executes p once, absorbing failover retries exactly
	// like exrquy.ExecuteContext does: on a retryable corrupt error the
	// suspect parts swap to their standby replicas, the healed documents
	// re-register, and the query re-runs.
	runRecovered := func(p *core.Prepared) error {
		for attempt := 0; ; attempt++ {
			_, err := p.Run(senv.Store, senv.Docs)
			if err == nil {
				return nil
			}
			if attempt >= 3 || !qerr.IsRetryableCorrupt(err) {
				return err
			}
			healed, ferr := st.FailoverSuspects()
			if ferr != nil {
				return ferr
			}
			for _, d := range healed {
				senv.Docs[d.URI] = []uint32{senv.Store.Add(d.Frag)}
			}
		}
	}

	if w != nil {
		fmt.Fprintf(w, "failover mode: %d parts x 2 replicas, one replica killed per run\n", parts)
	}
	var rows []TrajectoryRow
	for _, id := range queryIDs {
		q := xmarkq.Get(id)
		p, err := core.Prepare(q.Text, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/failover: %w", q.Name, err)
		}
		// Warm-up without a kill: page the store in, settle the pools.
		if err := runRecovered(p); err != nil {
			return nil, fmt.Errorf("%s/failover: warm-up: %w", q.Name, err)
		}
		times := make([]time.Duration, 0, repeats)
		for i := 0; i < repeats; i++ {
			if err := st.KillReplica((id + i) % parts); err != nil {
				return nil, fmt.Errorf("%s/failover: kill: %w", q.Name, err)
			}
			start := time.Now()
			if err := runRecovered(p); err != nil {
				return nil, fmt.Errorf("%s/failover: %w", q.Name, err)
			}
			times = append(times, time.Since(start))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		row := TrajectoryRow{
			Query:      q.Name,
			Mode:       "failover",
			Typed:      true,
			NsPerOp:    percentile(times, 50).Nanoseconds(),
			P95NsPerOp: percentile(times, 95).Nanoseconds(),
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "%-6s %-9s %-6s %14d p95=%d\n",
				row.Query, row.Mode, "typed", row.NsPerOp, row.P95NsPerOp)
		}
	}
	return rows, nil
}
