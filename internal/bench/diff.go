package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Trajectory regression gate. Diff compares a freshly measured trajectory
// against a committed baseline (BENCH_PR<n>.json) row by row and flags
// regressions beyond per-metric thresholds; cmd/benchdiff wraps it as the
// CI bench-gate. Wall-time noise on shared CI runners is real, so the
// ns/op threshold is deliberately loose (30%) while the allocs/op
// threshold is tight (10%) — allocation counts are deterministic up to
// pool reuse, so even a small sustained increase is a genuine change.

// DefaultNsPct and DefaultAllocsPct are the gate thresholds: a row fails
// when ns/op grows by more than DefaultNsPct percent or allocs/op by more
// than DefaultAllocsPct percent over the baseline.
const (
	DefaultNsPct     = 30.0
	DefaultAllocsPct = 10.0
)

// DiffThresholds bounds the acceptable growth per metric, in percent.
// Zero values mean the defaults.
type DiffThresholds struct {
	NsPct     float64
	AllocsPct float64
}

// DiffEntry is one (row, metric) comparison.
type DiffEntry struct {
	Query     string  `json:"query"`
	Mode      string  `json:"mode"`
	Typed     bool    `json:"typed"`
	Metric    string  `json:"metric"` // "ns_per_op" or "allocs_per_op"
	Base      float64 `json:"base"`
	Current   float64 `json:"current"`
	Pct       float64 `json:"pct"` // growth over baseline, percent (negative = improvement)
	Regressed bool    `json:"regressed"`
}

// rowKey identifies a trajectory row across reports.
type rowKey struct {
	query, mode string
	typed       bool
}

// Diff compares cur against base. Every baseline row must be present in
// cur (a vanished row means the gate lost coverage — that is an error,
// not a pass); rows only in cur are ignored, so adding queries does not
// break the gate. The returned entries cover every compared (row, metric)
// pair, improvements included, for reporting.
func Diff(base, cur *TrajectoryReport, th DiffThresholds) ([]DiffEntry, error) {
	if th.NsPct == 0 {
		th.NsPct = DefaultNsPct
	}
	if th.AllocsPct == 0 {
		th.AllocsPct = DefaultAllocsPct
	}
	// Comparing runs of different shape is meaningless; refuse loudly
	// rather than produce a green gate on apples-to-oranges numbers.
	if base.Factor != cur.Factor {
		return nil, fmt.Errorf("factor mismatch: baseline %g vs current %g", base.Factor, cur.Factor)
	}
	if base.Workers != cur.Workers {
		return nil, fmt.Errorf("workers mismatch: baseline %d vs current %d", base.Workers, cur.Workers)
	}
	curRows := make(map[rowKey]TrajectoryRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curRows[rowKey{r.Query, r.Mode, r.Typed}] = r
	}
	var out []DiffEntry
	for _, b := range base.Rows {
		// Load rows — "concurrent<N>" (xmarkbench -concurrency) and
		// "server<N>" (cmd/loadgen over HTTP against exrquyd) — record
		// behavior under deliberate overload: queueing, shedding, network
		// and machine load. Out-of-core rows — "ooc" and "shard<N>"
		// (xmarkbench -store-shards) — record demand paging under a
		// deliberately starved ledger: page-cache and filesystem noise.
		// Failover rows — "failover" (xmarkbench -failover) — record
		// recovery latency with a replica deliberately killed per run:
		// dominated by replica remount and document reassembly. None of
		// these latencies is a kernel-regression signal, so the families
		// are informational in the trajectory file and invisible to the
		// gate, in baseline and current alike.
		if strings.HasPrefix(b.Mode, "concurrent") || strings.HasPrefix(b.Mode, "server") ||
			strings.HasPrefix(b.Mode, "ooc") || strings.HasPrefix(b.Mode, "shard") ||
			strings.HasPrefix(b.Mode, "failover") {
			continue
		}
		c, ok := curRows[rowKey{b.Query, b.Mode, b.Typed}]
		if !ok {
			return nil, fmt.Errorf("row %s/%s/typed=%v present in baseline but missing from current run", b.Query, b.Mode, b.Typed)
		}
		out = append(out,
			diffMetric(b, "ns_per_op", float64(b.NsPerOp), float64(c.NsPerOp), th.NsPct),
			diffMetric(b, "allocs_per_op", float64(b.AllocsPerOp), float64(c.AllocsPerOp), th.AllocsPct))
	}
	return out, nil
}

func diffMetric(b TrajectoryRow, metric string, base, cur, maxPct float64) DiffEntry {
	e := DiffEntry{Query: b.Query, Mode: b.Mode, Typed: b.Typed, Metric: metric, Base: base, Current: cur}
	if base > 0 {
		e.Pct = (cur - base) / base * 100
		e.Regressed = e.Pct > maxPct
	} else {
		// A zero baseline can't express relative growth; any nonzero
		// current value is flagged so the change gets looked at.
		e.Regressed = cur > 0
		if e.Regressed {
			e.Pct = 100
		}
	}
	return e
}

// Regressed reports whether any entry failed its threshold.
func Regressed(entries []DiffEntry) bool {
	for _, e := range entries {
		if e.Regressed {
			return true
		}
	}
	return false
}

// WriteDiff renders the comparison as a table, regressions marked.
func WriteDiff(w io.Writer, entries []DiffEntry) {
	fmt.Fprintf(w, "%-6s %-9s %-6s %-14s %14s %14s %9s\n",
		"query", "mode", "cols", "metric", "baseline", "current", "delta")
	for _, e := range entries {
		cols := "typed"
		if !e.Typed {
			cols = "boxed"
		}
		mark := ""
		if e.Regressed {
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-6s %-9s %-6s %-14s %14.0f %14.0f %+8.1f%%%s\n",
			e.Query, e.Mode, cols, e.Metric, e.Base, e.Current, e.Pct, mark)
	}
}

// LoadTrajectory reads a trajectory report from a JSON file.
func LoadTrajectory(path string) (*TrajectoryReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep TrajectoryReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
