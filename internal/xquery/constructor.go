package xquery

import "strings"

// parseDirectConstructor parses <name attr="…{e}…">content</name> in
// expression position. It drives the lexer in raw character mode for tag
// and text scanning, and re-enters token mode for enclosed { } expressions.
// Boundary whitespace (whitespace-only text runs between child
// constructors/enclosed expressions) is stripped, matching the XQuery
// default boundary-space policy.
func (p *parser) parseDirectConstructor() (Expr, error) {
	if err := p.expectSym("<"); err != nil {
		return nil, err
	}
	p.lex.rawSync()
	return p.parseElemAfterLT()
}

// parseElemAfterLT parses an element constructor whose "<" has already
// been consumed; the lexer must be raw-synced.
func (p *parser) parseElemAfterLT() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l := p.lex
	name, pos := scanNCName(l.src, l.pos)
	if name == "" {
		return nil, l.errAt(l.pos, "expected element name in constructor")
	}
	l.pos = pos
	e := &ElemCons{Name: name}

	// Attributes.
	for {
		p.skipRawSpace()
		if l.pos >= len(l.src) {
			return nil, l.errAt(l.pos, "unterminated constructor <%s", name)
		}
		if strings.HasPrefix(l.src[l.pos:], "/>") {
			l.pos += 2
			return e, nil
		}
		if l.src[l.pos] == '>' {
			l.pos++
			break
		}
		aname, npos := scanNCName(l.src, l.pos)
		if aname == "" {
			return nil, l.errAt(l.pos, "expected attribute name in <%s>", name)
		}
		l.pos = npos
		p.skipRawSpace()
		if l.pos >= len(l.src) || l.src[l.pos] != '=' {
			return nil, l.errAt(l.pos, "expected = after attribute %s", aname)
		}
		l.pos++
		p.skipRawSpace()
		parts, err := p.parseAttrValueTemplate()
		if err != nil {
			return nil, err
		}
		e.Attrs = append(e.Attrs, AttrCons{Name: aname, Parts: parts})
	}

	// Content.
	var text strings.Builder
	flushText := func() {
		s := text.String()
		text.Reset()
		// Whitespace-only runs here always sit between markup boundaries,
		// so the default boundary-space=strip policy drops them.
		if s == "" || strings.TrimSpace(s) == "" {
			return
		}
		e.Content = append(e.Content, &CharContent{Text: s})
	}
	for {
		if l.pos >= len(l.src) {
			return nil, l.errAt(l.pos, "unterminated content of <%s>", name)
		}
		c := l.src[l.pos]
		switch {
		case strings.HasPrefix(l.src[l.pos:], "</"):
			flushText()
			l.pos += 2
			cname, npos := scanNCName(l.src, l.pos)
			if cname != name {
				return nil, l.errAt(l.pos, "mismatched closing tag </%s> for <%s>", cname, name)
			}
			l.pos = npos
			p.skipRawSpace()
			if l.pos >= len(l.src) || l.src[l.pos] != '>' {
				return nil, l.errAt(l.pos, "expected > in closing tag of %s", name)
			}
			l.pos++
			return e, nil
		case c == '<':
			flushText()
			l.pos++
			child, err := p.parseElemAfterLT()
			if err != nil {
				return nil, err
			}
			e.Content = append(e.Content, child)
		case strings.HasPrefix(l.src[l.pos:], "{{"):
			text.WriteByte('{')
			l.pos += 2
		case strings.HasPrefix(l.src[l.pos:], "}}"):
			text.WriteByte('}')
			l.pos += 2
		case c == '{':
			flushText()
			l.pos++
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("}"); err != nil {
				return nil, err
			}
			p.lex.rawSync()
			e.Content = append(e.Content, inner)
		case c == '&':
			rep, np, ok := scanEntity(l.src, l.pos)
			if !ok {
				return nil, l.errAt(l.pos, "malformed entity reference")
			}
			text.WriteString(rep)
			l.pos = np
		default:
			text.WriteByte(c)
			l.pos++
		}
	}
}

// parseAttrValueTemplate parses a quoted attribute value with embedded
// {expr} segments; the lexer must be raw-synced at the opening quote.
func (p *parser) parseAttrValueTemplate() ([]AttrPart, error) {
	l := p.lex
	if l.pos >= len(l.src) || (l.src[l.pos] != '"' && l.src[l.pos] != '\'') {
		return nil, l.errAt(l.pos, "expected quoted attribute value")
	}
	quote := l.src[l.pos]
	l.pos++
	var parts []AttrPart
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			parts = append(parts, AttrPart{Literal: lit.String()})
			lit.Reset()
		}
	}
	for {
		if l.pos >= len(l.src) {
			return nil, l.errAt(l.pos, "unterminated attribute value")
		}
		c := l.src[l.pos]
		switch {
		case c == quote:
			l.pos++
			flush()
			return parts, nil
		case strings.HasPrefix(l.src[l.pos:], "{{"):
			lit.WriteByte('{')
			l.pos += 2
		case strings.HasPrefix(l.src[l.pos:], "}}"):
			lit.WriteByte('}')
			l.pos += 2
		case c == '{':
			flush()
			l.pos++
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("}"); err != nil {
				return nil, err
			}
			p.lex.rawSync()
			parts = append(parts, AttrPart{Expr: inner})
		case c == '&':
			rep, np, ok := scanEntity(l.src, l.pos)
			if !ok {
				return nil, l.errAt(l.pos, "malformed entity reference")
			}
			lit.WriteString(rep)
			l.pos = np
		default:
			lit.WriteByte(c)
			l.pos++
		}
	}
}

// skipRawSpace advances over whitespace in raw mode.
func (p *parser) skipRawSpace() {
	l := p.lex
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}
