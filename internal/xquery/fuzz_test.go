package xquery

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/qerr"
)

// FuzzParseXQuery asserts the parser's total-function contract: arbitrary
// input either parses into a module or returns a classified error — it
// never panics and never exhausts the stack (the maxParseDepth guard).
func FuzzParseXQuery(f *testing.F) {
	for _, seed := range []string{
		`doc("t.xml")/a//(c|d)`,
		`unordered { for $x in doc("a.xml")//b return <r>{ $x/@id }</r> }`,
		`declare ordering unordered; declare function local:f($x) { $x + 1 }; local:f(2)`,
		`for $p in doc("auction.xml")/site/people/person where $p/@id = "p0" return $p/name`,
		`some $x in (1, 2, 3) satisfies $x > 2`,
		`<a b="{1+2}">{ "text" }</a>`,
		`(1, 2.5, "three")[2]`,
		`1 + `,
		`for $x in`,
		`<unclosed`,
		`((((((((((1))))))))))`,
		strings.Repeat("(", 600) + "1" + strings.Repeat(")", 600),
		"declare variable $x external; $x * 2",
		"(: comment (: nested :) :) 1",
		"&#x10FFFF; '&amp;'",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("input cap")
		}
		m, err := Parse(src)
		if err != nil {
			if m != nil {
				t.Fatalf("non-nil module alongside error %v", err)
			}
			if errors.Is(err, qerr.ErrInternal) {
				t.Fatalf("parser panic on %q: %v", src, err)
			}
			if !errors.Is(err, qerr.ErrParse) {
				t.Fatalf("unclassified parse failure on %q: %v", src, err)
			}
		}
	})
}

// TestParseDepthGuard pins the stack-exhaustion defence: pathological
// nesting is a positioned parse error, not a crash.
func TestParseDepthGuard(t *testing.T) {
	for name, src := range map[string]string{
		"parens":       strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000),
		"predicates":   "doc(\"t.xml\")/a" + strings.Repeat("[1 + (2", 60000),
		"constructors": strings.Repeat("<a>{", 60000),
		"negation_if":  strings.Repeat("if (1) then ", 60000) + "0 else 0",
	} {
		_, err := Parse(src)
		if err == nil {
			t.Fatalf("%s: deep nesting parsed", name)
		}
		if !errors.Is(err, qerr.ErrParse) {
			t.Errorf("%s: depth error not ErrParse: %v", name, err)
		}
	}
	// Realistic nesting stays well below the guard.
	ok := strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100)
	if _, err := Parse(ok); err != nil {
		t.Errorf("100-deep nesting rejected: %v", err)
	}
}

// TestParseErrorPositions runs a corpus of malformed queries and checks
// that each reports a 1-based line/column through the qerr taxonomy.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		src       string
		line, col int
	}{
		{`1 +`, 1, 4},                      // missing operand at EOF
		{"1,\n2,\n3 +", 3, 4},              // position tracks newlines
		{`for $x in (1,2) give $x`, 1, 17}, // bad FLWOR keyword
		{`doc("t.xml")/a[`, 1, 16},         // unterminated predicate
		{`declare ordering sideways; 1`, 1, 18},
		{"\n\n   $", 3, 5}, // bare $: missing name reported after it
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%q: parsed", tc.src)
			continue
		}
		if !errors.Is(err, qerr.ErrParse) {
			t.Errorf("%q: not ErrParse: %v", tc.src, err)
			continue
		}
		line, col, ok := qerr.PositionOf(err)
		if !ok {
			t.Errorf("%q: no position on %v", tc.src, err)
			continue
		}
		if line != tc.line || col != tc.col {
			t.Errorf("%q: position %d:%d, want %d:%d (%v)", tc.src, line, col, tc.line, tc.col, err)
		}
	}
}
