package xquery

import (
	"strings"
	"testing"

	"repro/internal/xdm"
)

func parseBody(t *testing.T, src string) Expr {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return m.Body
}

func TestParseLiterals(t *testing.T) {
	if e, ok := parseBody(t, "42").(*IntLit); !ok || e.Val != 42 {
		t.Errorf("int literal: %#v", e)
	}
	if e, ok := parseBody(t, "2.5").(*DecLit); !ok || e.Val != 2.5 {
		t.Errorf("decimal literal: %#v", e)
	}
	if e, ok := parseBody(t, "1.5e2").(*DecLit); !ok || e.Val != 150 {
		t.Errorf("double literal: %#v", e)
	}
	if e, ok := parseBody(t, `"a""b"`).(*StrLit); !ok || e.Val != `a"b` {
		t.Errorf("string literal: %#v", e)
	}
	if e, ok := parseBody(t, `'it''s'`).(*StrLit); !ok || e.Val != "it's" {
		t.Errorf("apos string: %#v", e)
	}
	if e, ok := parseBody(t, `"x &amp; y"`).(*StrLit); !ok || e.Val != "x & y" {
		t.Errorf("entity in string: %#v", e)
	}
	if _, ok := parseBody(t, "()").(*EmptySeq); !ok {
		t.Error("() should be EmptySeq")
	}
}

func TestParsePaperExpression1(t *testing.T) {
	// $t//(c|d)  — Expression (1) of the paper. Lowers to a union over a
	// shared descendant-or-self base.
	e := parseBody(t, "$t//(c|d)")
	u, ok := e.(*SetOp)
	if !ok || u.Kind != SetUnion {
		t.Fatalf("want union, got %s", e)
	}
	l, ok := u.L.(*Path)
	if !ok || len(l.Steps) != 1 || l.Steps[0].Test.Name != "c" {
		t.Fatalf("left branch: %s", u.L)
	}
	r, ok := u.R.(*Path)
	if !ok || len(r.Steps) != 1 || r.Steps[0].Test.Name != "d" {
		t.Fatalf("right branch: %s", u.R)
	}
	if l.Start != r.Start {
		t.Error("branches should share the base expression")
	}
	base, ok := l.Start.(*Path)
	if !ok || len(base.Steps) != 1 || base.Steps[0].Axis != AxisDescendantOrSelf ||
		base.Steps[0].Test.Kind != TestNode {
		t.Fatalf("base: %s", l.Start)
	}
}

func TestParseUnorderedScope(t *testing.T) {
	// unordered { $t//c }, unordered { $t//d } — Expression (2).
	e := parseBody(t, "unordered { $t//c }, unordered { $t//d }")
	seq, ok := e.(*Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("want 2-item sequence, got %s", e)
	}
	for i, it := range seq.Items {
		o, ok := it.(*OrderedExpr)
		if !ok || o.Mode != Unordered {
			t.Errorf("item %d: want unordered{}, got %s", i, it)
		}
	}
}

func TestParseFLWOR(t *testing.T) {
	e := parseBody(t, `for $x at $p in ("a","b","c") return <e pos="{ $p }">{ $x }</e>`)
	fl, ok := e.(*FLWOR)
	if !ok {
		t.Fatalf("want FLWOR, got %s", e)
	}
	fc, ok := fl.Clauses[0].(*ForClause)
	if !ok || fc.Var != "x" || fc.PosVar != "p" {
		t.Fatalf("for clause: %#v", fl.Clauses[0])
	}
	cons, ok := fl.Return.(*ElemCons)
	if !ok || cons.Name != "e" || len(cons.Attrs) != 1 || cons.Attrs[0].Name != "pos" {
		t.Fatalf("return: %s", fl.Return)
	}
	if len(cons.Attrs[0].Parts) != 1 || cons.Attrs[0].Parts[0].Expr == nil {
		t.Fatalf("AVT parts: %#v", cons.Attrs[0].Parts)
	}
	if len(cons.Content) != 1 {
		t.Fatalf("content: %#v", cons.Content)
	}
}

func TestParseNestedFLWOR(t *testing.T) {
	e := parseBody(t, `for $x in (1,2) for $y in (10,20) return <a>{ $x, $y }</a>`)
	fl, ok := e.(*FLWOR)
	if !ok || len(fl.Clauses) != 2 {
		t.Fatalf("want FLWOR with 2 clauses, got %s", e)
	}
}

func TestParseLetWhereOrderBy(t *testing.T) {
	src := `for $b in $doc/site/regions//item
	        let $k := $b/name/text()
	        where $b/quantity > 1
	        order by zero-or-one($b/location) ascending empty greatest
	        return <item name="{$k}"/>`
	fl, ok := parseBody(t, src).(*FLWOR)
	if !ok {
		t.Fatalf("not a FLWOR")
	}
	if len(fl.Clauses) != 2 {
		t.Fatalf("clauses: %d", len(fl.Clauses))
	}
	if _, ok := fl.Clauses[1].(*LetClause); !ok {
		t.Error("second clause should be let")
	}
	if fl.Where == nil || len(fl.Order) != 1 {
		t.Fatal("missing where/order by")
	}
	if fl.Order[0].Descending || !fl.Order[0].EmptyGreatest {
		t.Errorf("order spec: %+v", fl.Order[0])
	}
}

func TestParseQuantified(t *testing.T) {
	src := `some $pr1 in $b/bidder/personref[@person = "person20"],
	             $pr2 in $b/bidder/personref[@person = "person51"]
	        satisfies $pr1 << $pr2`
	q, ok := parseBody(t, src).(*Quantified)
	if !ok || q.Every || len(q.Vars) != 2 {
		t.Fatalf("quantified: %#v", q)
	}
	nc, ok := q.Satisfies.(*NodeCmp)
	if !ok || nc.Op != NodeBefore {
		t.Fatalf("satisfies: %s", q.Satisfies)
	}
	p, ok := q.Vars[0].In.(*Path)
	if !ok || len(p.Steps) != 2 || len(p.Steps[1].Preds) != 1 {
		t.Fatalf("domain path: %s", q.Vars[0].In)
	}
}

func TestParsePathForms(t *testing.T) {
	for src, want := range map[string]string{
		"$a/site/people/person":      "$a/child::site/child::people/child::person",
		"$b//c":                      "$b/descendant-or-self::node()/child::c",
		"$p/profile/@income":         "$p/child::profile/attribute::income",
		"$b/descendant::item":        "$b/descendant::item",
		"$a/text()":                  "$a/child::text()",
		"$a/*":                       "$a/child::*",
		"$a/..":                      "$a/parent::node()",
		"$b/bidder[1]/increase":      "$b/child::bidder[1]/child::increase",
		"$b/bidder[last()]":          "$b/child::bidder[last()]",
		"$p/self::node()":            "$p/self::node()",
		"$x/node()":                  "$x/child::node()",
		`doc("a.xml")/site`:          `doc("a.xml")/child::site`,
		"$a/person[@id = 'person0']": `$a/child::person[($p2 = "person0")]`, // placeholder, see below
		"$auction/site//item":        "$auction/child::site/descendant-or-self::node()/child::item",
	} {
		if src == "$a/person[@id = 'person0']" {
			// Predicate rendering differs; check structure instead.
			p := parseBody(t, src).(*Path)
			if len(p.Steps[0].Preds) != 1 {
				t.Errorf("%s: predicates %v", src, p.Steps[0].Preds)
			}
			continue
		}
		got := parseBody(t, src).String()
		if got != want {
			t.Errorf("%s: got %s, want %s", src, got, want)
		}
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	e := parseBody(t, "1 + 2 * 3 = 7 and 2 < 3 or false()")
	or, ok := e.(*Logic)
	if !ok || or.Op != LogicOr {
		t.Fatalf("top: %s", e)
	}
	and, ok := or.L.(*Logic)
	if !ok || and.Op != LogicAnd {
		t.Fatalf("or.L: %s", or.L)
	}
	cmp, ok := and.L.(*GeneralCmp)
	if !ok || cmp.Op != xdm.CmpEq {
		t.Fatalf("and.L: %s", and.L)
	}
	add, ok := cmp.L.(*Arith)
	if !ok || add.Op != xdm.OpAdd {
		t.Fatalf("cmp.L: %s", cmp.L)
	}
	if mul, ok := add.R.(*Arith); !ok || mul.Op != xdm.OpMul {
		t.Fatalf("add.R: %s", add.R)
	}
}

func TestParseComparisons(t *testing.T) {
	if c, ok := parseBody(t, "$a eq $b").(*ValueCmp); !ok || c.Op != xdm.CmpEq {
		t.Error("value comparison eq")
	}
	if c, ok := parseBody(t, "$a >= $b").(*GeneralCmp); !ok || c.Op != xdm.CmpGe {
		t.Error("general comparison >=")
	}
	if c, ok := parseBody(t, "$a is $b").(*NodeCmp); !ok || c.Op != NodeIs {
		t.Error("node comparison is")
	}
	if c, ok := parseBody(t, "$a >> $b").(*NodeCmp); !ok || c.Op != NodeAfter {
		t.Error("node comparison >>")
	}
}

func TestParseSetOps(t *testing.T) {
	if s, ok := parseBody(t, "$a union $b").(*SetOp); !ok || s.Kind != SetUnion {
		t.Error("union")
	}
	if s, ok := parseBody(t, "$a intersect $b").(*SetOp); !ok || s.Kind != SetIntersect {
		t.Error("intersect")
	}
	if s, ok := parseBody(t, "$a except $b").(*SetOp); !ok || s.Kind != SetExcept {
		t.Error("except")
	}
}

func TestParseArithNames(t *testing.T) {
	if a, ok := parseBody(t, "7 idiv 2").(*Arith); !ok || a.Op != xdm.OpIDiv {
		t.Error("idiv")
	}
	if a, ok := parseBody(t, "7 mod 2").(*Arith); !ok || a.Op != xdm.OpMod {
		t.Error("mod")
	}
	if a, ok := parseBody(t, "7 div 2").(*Arith); !ok || a.Op != xdm.OpDiv {
		t.Error("div")
	}
	if n, ok := parseBody(t, "-$x").(*Neg); !ok {
		t.Errorf("unary minus: %#v", n)
	}
	if r, ok := parseBody(t, "1 to 5").(*RangeExpr); !ok {
		t.Errorf("range: %#v", r)
	}
}

func TestParsePrologDeclarations(t *testing.T) {
	m, err := Parse(`xquery version "1.0";
		declare ordering unordered;
		declare function local:convert($v as xs:decimal?) as xs:decimal? { 2.20371 * $v };
		local:convert(5)`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ordering != Unordered {
		t.Error("ordering mode not recorded")
	}
	if len(m.Functions) != 1 {
		t.Fatalf("functions: %d", len(m.Functions))
	}
	fd := m.Functions[0]
	if fd.Name != "local:convert" || len(fd.Params) != 1 ||
		fd.Params[0].Name != "v" || fd.Params[0].Type != "xs:decimal?" ||
		fd.Result != "xs:decimal?" {
		t.Errorf("func decl: %+v", fd)
	}
	call, ok := m.Body.(*FuncCall)
	if !ok || call.Name != "local:convert" {
		t.Errorf("body: %s", m.Body)
	}
}

func TestParseFnPrefixStripped(t *testing.T) {
	c, ok := parseBody(t, "fn:count($x)").(*FuncCall)
	if !ok || c.Name != "count" {
		t.Errorf("fn: prefix should be stripped: %#v", c)
	}
}

func TestParseIfExpr(t *testing.T) {
	e, ok := parseBody(t, "if ($a > 1) then $b else ()").(*IfExpr)
	if !ok {
		t.Fatal("not an if")
	}
	if _, ok := e.Else.(*EmptySeq); !ok {
		t.Error("else branch")
	}
}

func TestParseConstructors(t *testing.T) {
	e := parseBody(t, `<result><preferred>{ 1 }</preferred><na/></result>`)
	c, ok := e.(*ElemCons)
	if !ok || c.Name != "result" || len(c.Content) != 2 {
		t.Fatalf("constructor: %s", e)
	}
	pref := c.Content[0].(*ElemCons)
	if pref.Name != "preferred" || len(pref.Content) != 1 {
		t.Fatalf("nested: %s", c.Content[0])
	}
	if _, ok := c.Content[1].(*ElemCons); !ok {
		t.Fatal("empty-element constructor")
	}

	// Mixed text content, escapes and entities.
	c2 := parseBody(t, `<e>a {{b}} &lt;c&gt;</e>`).(*ElemCons)
	if len(c2.Content) != 1 {
		t.Fatalf("content: %#v", c2.Content)
	}
	txt := c2.Content[0].(*CharContent)
	if txt.Text != "a {b} <c>" {
		t.Errorf("text: %q", txt.Text)
	}

	// Attribute value template with multiple parts.
	c3 := parseBody(t, `<e a="x{1}y{2}"/>`).(*ElemCons)
	parts := c3.Attrs[0].Parts
	if len(parts) != 4 || parts[0].Literal != "x" || parts[1].Expr == nil ||
		parts[2].Literal != "y" || parts[3].Expr == nil {
		t.Errorf("AVT parts: %#v", parts)
	}
}

func TestParseWhitespaceOnlyContentStripped(t *testing.T) {
	c := parseBody(t, "<items>\n  { 1 }\n</items>").(*ElemCons)
	if len(c.Content) != 1 {
		t.Errorf("boundary whitespace kept: %#v", c.Content)
	}
}

func TestParseComments(t *testing.T) {
	e := parseBody(t, `(: outer (: nested :) still comment :) 42`)
	if i, ok := e.(*IntLit); !ok || i.Val != 42 {
		t.Errorf("comment handling: %s", e)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",                     // empty
		"for $x in",            // truncated
		"$a/",                  // dangling slash
		"/site",                // absolute path
		"<a><b></a>",           // mismatched constructor
		"1 +",                  // missing operand
		"some $x in (1)",       // missing satisfies
		"if (1) then 2",        // missing else
		"declare ordering up;", // bad mode
		`<e a=oops/>`,          // unquoted attribute
		"$a/following::b",      // unsupported axis
		"1; 2",                 // stray token
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		} else if !strings.Contains(err.Error(), "xquery:") {
			t.Errorf("Parse(%q): error %v lacks position prefix", src, err)
		}
	}
}

func TestParseXMarkQ11Shape(t *testing.T) {
	src := `let $auction := doc("auction.xml")
	for $p in $auction/site/people/person
	let $l := for $i in $auction/site/open_auctions/open_auction/initial
	          where $p/profile/@income > 5000 * $i
	          return $i
	return <items name="{ $p/name }">{ fn:count($l) }</items>`
	fl, ok := parseBody(t, src).(*FLWOR)
	if !ok || len(fl.Clauses) != 3 {
		t.Fatalf("Q11 shape: %T with %d clauses", fl, len(fl.Clauses))
	}
	inner, ok := fl.Clauses[2].(*LetClause)
	if !ok {
		t.Fatal("third clause should be let $l")
	}
	innerFl, ok := inner.Expr.(*FLWOR)
	if !ok || innerFl.Where == nil {
		t.Fatal("inner FLWOR with where expected")
	}
}

func TestStringRoundTripStability(t *testing.T) {
	// Rendering a parsed expression and re-parsing it must be stable.
	for _, src := range []string{
		"$t//(c|d)",
		"for $x in (1, 2) return ($x, $x * 10)",
		"some $x in $s satisfies $x eq 1",
		"count($l) + sum($m)",
		"unordered { $t//c[2] }",
	} {
		first := parseBody(t, src).String()
		second := parseBody(t, first).String()
		if first != second {
			t.Errorf("%s: unstable rendering %q vs %q", src, first, second)
		}
	}
}
