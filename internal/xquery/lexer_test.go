package xquery

import "testing"

func lex(src string) []token {
	l := newLexer(src)
	var out []token
	for {
		t := l.next()
		out = append(out, t)
		if t.kind == tEOF {
			return out
		}
	}
}

func TestLexNames(t *testing.T) {
	toks := lex(`descendant-or-self zero-or-one fn:count local:f _x a1.b`)
	want := []string{"descendant-or-self", "zero-or-one", "fn:count", "local:f", "_x", "a1.b"}
	for i, w := range want {
		if toks[i].kind != tName || toks[i].text != w {
			t.Errorf("token %d: %v, want name %q", i, toks[i], w)
		}
	}
}

func TestLexQNameVsAxis(t *testing.T) {
	// "child::x" must lex as name(child) sym(::) name(x), not QName child:x.
	toks := lex(`child::x`)
	if !toks[0].isName("child") || !toks[1].isSym("::") || !toks[2].isName("x") {
		t.Errorf("axis lexing: %v", toks[:3])
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]struct {
		kind tokKind
		i    int64
		f    float64
	}{
		"42":      {tInt, 42, 0},
		"0":       {tInt, 0, 0},
		"2.5":     {tDec, 0, 2.5},
		".5":      {tDec, 0, 0.5},
		"1e3":     {tDec, 0, 1000},
		"1.5E-2":  {tDec, 0, 0.015},
		"2.20371": {tDec, 0, 2.20371},
	}
	for src, want := range cases {
		tok := lex(src)[0]
		if tok.kind != want.kind || tok.i != want.i || tok.f != want.f {
			t.Errorf("lex(%q) = %+v, want %+v", src, tok, want)
		}
	}
	// Large integers degrade to doubles rather than overflowing.
	if tok := lex("99999999999999999999999")[0]; tok.kind != tDec {
		t.Errorf("huge literal: %+v", tok)
	}
	// "e[1]" after a number must not eat the dots of "..".
	toks := lex("1 .. 2")
	if !toks[1].isSym("..") {
		t.Errorf("dotdot: %v", toks)
	}
}

func TestLexStrings(t *testing.T) {
	cases := map[string]string{
		`"plain"`:       "plain",
		`"do""ble"`:     `do"ble`,
		`'sin''gle'`:    "sin'gle",
		`"&amp;&lt;"`:   "&<",
		`"&#65;&#x42;"`: "AB",
	}
	for src, want := range cases {
		tok := lex(src)[0]
		if tok.kind != tStr || tok.s != want {
			t.Errorf("lex(%q) = %+v, want string %q", src, tok, want)
		}
	}
}

func TestLexSymbols(t *testing.T) {
	toks := lex(`// << >> <= >= != :: .. := < > = | @ $`)
	want := []string{"//", "<<", ">>", "<=", ">=", "!=", "::", "..", ":=", "<", ">", "=", "|", "@", "$"}
	for i, w := range want {
		if !toks[i].isSym(w) {
			t.Errorf("token %d: %v, want symbol %q", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(`1 (: comment :) 2 (: outer (: inner :) still :) 3`)
	var ints []int64
	for _, tok := range toks {
		if tok.kind == tInt {
			ints = append(ints, tok.i)
		}
	}
	if len(ints) != 3 || ints[0] != 1 || ints[1] != 2 || ints[2] != 3 {
		t.Errorf("comment skipping: %v", ints)
	}
	// Unterminated comment just consumes the rest.
	toks = lex(`1 (: open`)
	if toks[1].kind != tEOF {
		t.Errorf("unterminated comment: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	l := newLexer("ab\ncd")
	l.next()
	tok := l.next()
	err := l.errAt(tok.pos, "boom")
	if err.Error() != "xquery: 2:1: boom" {
		t.Errorf("position error: %v", err)
	}
}

func TestRawSyncRewindsLookahead(t *testing.T) {
	l := newLexer("a b c")
	l.peekN(2) // buffer three tokens
	l.rawSync()
	if l.src[l.pos] != 'a' {
		t.Errorf("rawSync should rewind to the first buffered token; pos=%d", l.pos)
	}
	if !l.next().isName("a") {
		t.Error("token stream broken after rawSync")
	}
}

func TestScanEntity(t *testing.T) {
	for src, want := range map[string]string{
		"&amp;x": "&",
		"&lt;":   "<",
		"&gt;":   ">",
		"&quot;": `"`,
		"&apos;": "'",
		"&#65;":  "A",
		"&#x4A;": "J",
	} {
		got, _, ok := scanEntity(src, 0)
		if !ok || got != want {
			t.Errorf("scanEntity(%q) = %q/%v, want %q", src, got, ok, want)
		}
	}
	if _, _, ok := scanEntity("&nosemicolon", 0); ok {
		t.Error("missing semicolon accepted")
	}
	if _, _, ok := scanEntity("&unknown;", 0); ok {
		t.Error("unknown entity accepted")
	}
}
