package xquery

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/qerr"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tEOF tokKind = iota
	tName
	tInt
	tDec
	tStr
	tSym
)

type token struct {
	kind tokKind
	text string  // name text, symbol text
	i    int64   // tInt value
	f    float64 // tDec value
	s    string  // tStr value
	pos  int     // byte offset of the token start
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "<eof>"
	case tName:
		return t.text
	case tInt:
		return strconv.FormatInt(t.i, 10)
	case tDec:
		return strconv.FormatFloat(t.f, 'g', -1, 64)
	case tStr:
		return strconv.Quote(t.s)
	default:
		return t.text
	}
}

// lexer produces tokens on demand. The parser can drop to raw character
// mode (for direct element constructors) via rawSync/rawByte, which first
// rewinds any lookahead.
type lexer struct {
	src    string
	pos    int
	peeked []token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// errAt formats an error with line/column position info, classified as a
// parse error in the qerr taxonomy (errors.Is(err, qerr.ErrParse), with
// the position recoverable via qerr.PositionOf).
func (l *lexer) errAt(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return qerr.At(qerr.ErrParse, "parse", line, col,
		fmt.Errorf("xquery: %d:%d: %s", line, col, fmt.Sprintf(format, args...)))
}

// next returns the next token, consuming it.
func (l *lexer) next() token {
	if n := len(l.peeked); n > 0 {
		t := l.peeked[0]
		l.peeked = l.peeked[1:]
		return t
	}
	return l.scan()
}

// peek returns the next token without consuming it.
func (l *lexer) peek() token { return l.peekN(0) }

// peekN looks ahead n tokens (0 = next).
func (l *lexer) peekN(n int) token {
	for len(l.peeked) <= n {
		l.peeked = append(l.peeked, l.scan())
	}
	return l.peeked[n]
}

// rawSync rewinds the input to the start of any buffered lookahead and
// clears the buffer, so the parser can read characters directly.
func (l *lexer) rawSync() {
	if len(l.peeked) > 0 {
		l.pos = l.peeked[0].pos
		l.peeked = l.peeked[:0]
	}
}

// skipSpaceAndComments advances over whitespace and (nested) (: … :) comments.
func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			depth := 1
			l.pos += 2
			for l.pos < len(l.src) && depth > 0 {
				if strings.HasPrefix(l.src[l.pos:], "(:") {
					depth++
					l.pos += 2
				} else if strings.HasPrefix(l.src[l.pos:], ":)") {
					depth--
					l.pos += 2
				} else {
					l.pos++
				}
			}
			continue
		}
		break
	}
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// scanNCName reads an NCName starting at pos; returns the name and the new
// position, or ("", pos) if none.
func scanNCName(src string, pos int) (string, int) {
	r, w := utf8.DecodeRuneInString(src[pos:])
	if !isNameStart(r) {
		return "", pos
	}
	start := pos
	pos += w
	for pos < len(src) {
		r, w = utf8.DecodeRuneInString(src[pos:])
		if !isNameChar(r) {
			break
		}
		pos += w
	}
	return src[start:pos], pos
}

func (l *lexer) scan() token {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tEOF, pos: start}
	}
	c := l.src[l.pos]

	// Names (NCName or QName).
	if r, _ := utf8.DecodeRuneInString(l.src[l.pos:]); isNameStart(r) {
		name, p := scanNCName(l.src, l.pos)
		// QName: prefix ':' local — but not '::' (axis separator).
		if p < len(l.src) && l.src[p] == ':' && p+1 < len(l.src) && l.src[p+1] != ':' {
			if r2, _ := utf8.DecodeRuneInString(l.src[p+1:]); isNameStart(r2) {
				local, p2 := scanNCName(l.src, p+1)
				l.pos = p2
				return token{kind: tName, text: name + ":" + local, pos: start}
			}
		}
		l.pos = p
		return token{kind: tName, text: name, pos: start}
	}

	// Numbers.
	if c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9') {
		p := l.pos
		seenDot, seenExp := false, false
		for p < len(l.src) {
			ch := l.src[p]
			switch {
			case ch >= '0' && ch <= '9':
				p++
			case ch == '.' && !seenDot && !seenExp:
				// ".." must not be consumed ("1 .. 2" is not valid anyway,
				// but "e[1]..": keep ".." intact).
				if p+1 < len(l.src) && l.src[p+1] == '.' {
					goto done
				}
				seenDot = true
				p++
			case (ch == 'e' || ch == 'E') && !seenExp:
				if p+1 < len(l.src) && (l.src[p+1] == '+' || l.src[p+1] == '-' || (l.src[p+1] >= '0' && l.src[p+1] <= '9')) {
					seenExp = true
					p++
					if l.src[p] == '+' || l.src[p] == '-' {
						p++
					}
				} else {
					goto done
				}
			default:
				goto done
			}
		}
	done:
		text := l.src[l.pos:p]
		l.pos = p
		if !seenDot && !seenExp {
			i, err := strconv.ParseInt(text, 10, 64)
			if err == nil {
				return token{kind: tInt, i: i, pos: start}
			}
		}
		f, _ := strconv.ParseFloat(text, 64)
		return token{kind: tDec, f: f, pos: start}
	}

	// String literals with doubled-quote escapes and predefined entities.
	if c == '"' || c == '\'' {
		quote := c
		var sb strings.Builder
		p := l.pos + 1
		for p < len(l.src) {
			ch := l.src[p]
			if ch == quote {
				if p+1 < len(l.src) && l.src[p+1] == quote {
					sb.WriteByte(quote)
					p += 2
					continue
				}
				l.pos = p + 1
				return token{kind: tStr, s: sb.String(), pos: start}
			}
			if ch == '&' {
				rep, np, ok := scanEntity(l.src, p)
				if ok {
					sb.WriteString(rep)
					p = np
					continue
				}
			}
			sb.WriteByte(ch)
			p++
		}
		l.pos = len(l.src)
		return token{kind: tSym, text: "<unterminated string>", pos: start}
	}

	// Multi-character symbols, longest match first.
	for _, sym := range []string{"//", "<<", ">>", "<=", ">=", "!=", "::", "..", ":="} {
		if strings.HasPrefix(l.src[l.pos:], sym) {
			l.pos += len(sym)
			return token{kind: tSym, text: sym, pos: start}
		}
	}
	l.pos++
	return token{kind: tSym, text: string(c), pos: start}
}

// scanEntity decodes a predefined or character entity reference starting at
// src[pos] == '&'. Returns the replacement, the position after ';', and
// whether the reference was well-formed.
func scanEntity(src string, pos int) (string, int, bool) {
	end := strings.IndexByte(src[pos:], ';')
	if end < 0 || end > 12 {
		return "", pos, false
	}
	ref := src[pos+1 : pos+end]
	switch ref {
	case "amp":
		return "&", pos + end + 1, true
	case "lt":
		return "<", pos + end + 1, true
	case "gt":
		return ">", pos + end + 1, true
	case "quot":
		return `"`, pos + end + 1, true
	case "apos":
		return "'", pos + end + 1, true
	}
	if strings.HasPrefix(ref, "#x") || strings.HasPrefix(ref, "#X") {
		if n, err := strconv.ParseInt(ref[2:], 16, 32); err == nil {
			return string(rune(n)), pos + end + 1, true
		}
	} else if strings.HasPrefix(ref, "#") {
		if n, err := strconv.ParseInt(ref[1:], 10, 32); err == nil {
			return string(rune(n)), pos + end + 1, true
		}
	}
	return "", pos, false
}

// isSym reports whether t is the given symbol.
func (t token) isSym(s string) bool { return t.kind == tSym && t.text == s }

// isName reports whether t is the given name token.
func (t token) isName(s string) bool { return t.kind == tName && t.text == s }
