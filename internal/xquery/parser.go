package xquery

import (
	"strings"

	"repro/internal/qerr"
	"repro/internal/xdm"
)

// Parse parses a complete query (prolog + body) into a Module. Parse
// never panics: parser bugs tripped by hostile input surface as
// qerr.ErrInternal, syntax errors as positioned qerr.ErrParse values.
func Parse(src string) (m *Module, err error) {
	defer qerr.RecoverInto("parse", &err)
	p := &parser{lex: newLexer(src)}
	m, err = p.parseModule()
	if err != nil {
		return nil, err
	}
	return m, nil
}

// MustParse parses or panics; for tests and fixed query corpora.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

// maxParseDepth bounds expression nesting. Every recursive descent into a
// sub-expression passes through parseExprSingle or the direct element
// constructor, so bounding those two sites bounds the parser's (and every
// later phase's) stack: a hostile query of 100k open parentheses is a
// parse error, not a fatal stack exhaustion no recover() could catch.
const maxParseDepth = 500

type parser struct {
	lex   *lexer
	depth int
}

// enter guards one level of expression nesting; callers must pair it with
// leave. It returns a positioned parse error past maxParseDepth.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.lex.errAt(p.lex.pos, "expression nesting exceeds %d levels", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) err(t token, format string, args ...any) error {
	return p.lex.errAt(t.pos, format, args...)
}

// expectSym consumes the next token, requiring it to be the given symbol.
func (p *parser) expectSym(s string) error {
	t := p.lex.next()
	if !t.isSym(s) {
		return p.err(t, "expected %q, found %q", s, t.String())
	}
	return nil
}

// expectName consumes the next token, requiring the given keyword.
func (p *parser) expectName(s string) error {
	t := p.lex.next()
	if !t.isName(s) {
		return p.err(t, "expected %q, found %q", s, t.String())
	}
	return nil
}

// parseVarName parses "$name".
func (p *parser) parseVarName() (string, error) {
	if err := p.expectSym("$"); err != nil {
		return "", err
	}
	t := p.lex.next()
	if t.kind != tName {
		return "", p.err(t, "expected variable name, found %q", t.String())
	}
	return t.text, nil
}

func (p *parser) parseModule() (*Module, error) {
	m := &Module{Ordering: Ordered}
	// Optional version declaration.
	if p.lex.peek().isName("xquery") && p.lex.peekN(1).isName("version") {
		p.lex.next()
		p.lex.next()
		if t := p.lex.next(); t.kind != tStr {
			return nil, p.err(t, "expected version string")
		}
		if err := p.expectSym(";"); err != nil {
			return nil, err
		}
	}
	// Prolog declarations.
	for p.lex.peek().isName("declare") {
		p.lex.next()
		t := p.lex.next()
		switch {
		case t.isName("ordering"):
			mode := p.lex.next()
			switch {
			case mode.isName("ordered"):
				m.Ordering = Ordered
			case mode.isName("unordered"):
				m.Ordering = Unordered
			default:
				return nil, p.err(mode, "expected ordered or unordered")
			}
			if err := p.expectSym(";"); err != nil {
				return nil, err
			}
		case t.isName("function"):
			fd, err := p.parseFuncDecl()
			if err != nil {
				return nil, err
			}
			m.Functions = append(m.Functions, fd)
		case t.isName("variable"):
			vd, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			m.Variables = append(m.Variables, vd)
		default:
			return nil, p.err(t, "unsupported declaration %q", t.String())
		}
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.lex.next(); t.kind != tEOF {
		return nil, p.err(t, "unexpected trailing %q", t.String())
	}
	m.Body = body
	return m, nil
}

// parseSeqType consumes a sequence type (QName with optional occurrence
// indicator, or empty-sequence()); the text is recorded but not enforced.
func (p *parser) parseSeqType() (string, error) {
	t := p.lex.next()
	if t.kind != tName {
		return "", p.err(t, "expected type name, found %q", t.String())
	}
	typ := t.text
	if p.lex.peek().isSym("(") { // empty-sequence(), item()
		p.lex.next()
		if err := p.expectSym(")"); err != nil {
			return "", err
		}
		typ += "()"
	}
	if pk := p.lex.peek(); pk.isSym("?") || pk.isSym("*") || pk.isSym("+") {
		typ += p.lex.next().text
	}
	return typ, nil
}

// parseVarDecl parses "declare variable $x [as type] (external | := e);"
// with the leading keywords already consumed.
func (p *parser) parseVarDecl() (*VarDecl, error) {
	name, err := p.parseVarName()
	if err != nil {
		return nil, err
	}
	vd := &VarDecl{Name: name}
	if p.lex.peek().isName("as") {
		p.lex.next()
		if vd.Type, err = p.parseSeqType(); err != nil {
			return nil, err
		}
	}
	t := p.lex.next()
	switch {
	case t.isName("external"):
		vd.External = true
	case t.isSym(":="):
		if vd.Init, err = p.parseExprSingle(); err != nil {
			return nil, err
		}
	default:
		return nil, p.err(t, "expected external or := in variable declaration")
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *parser) parseFuncDecl() (*FuncDecl, error) {
	t := p.lex.next()
	if t.kind != tName {
		return nil, p.err(t, "expected function name")
	}
	fd := &FuncDecl{Name: t.text}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	if !p.lex.peek().isSym(")") {
		for {
			name, err := p.parseVarName()
			if err != nil {
				return nil, err
			}
			param := Param{Name: name}
			if p.lex.peek().isName("as") {
				p.lex.next()
				param.Type, err = p.parseSeqType()
				if err != nil {
					return nil, err
				}
			}
			fd.Params = append(fd.Params, param)
			if !p.lex.peek().isSym(",") {
				break
			}
			p.lex.next()
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if p.lex.peek().isName("as") {
		p.lex.next()
		var err error
		fd.Result, err = p.parseSeqType()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// parseExpr parses a comma-separated sequence expression.
func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if !p.lex.peek().isSym(",") {
		return first, nil
	}
	items := []Expr{first}
	for p.lex.peek().isSym(",") {
		p.lex.next()
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	return &Sequence{Items: items}, nil
}

func (p *parser) parseExprSingle() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.lex.peek()
	switch {
	case (t.isName("for") || t.isName("let")) && p.lex.peekN(1).isSym("$"):
		return p.parseFLWOR()
	case (t.isName("some") || t.isName("every")) && p.lex.peekN(1).isSym("$"):
		return p.parseQuantified()
	case t.isName("if") && p.lex.peekN(1).isSym("("):
		return p.parseIf()
	default:
		return p.parseOr()
	}
}

func (p *parser) parseFLWOR() (Expr, error) {
	fl := &FLWOR{}
	for {
		t := p.lex.peek()
		switch {
		case t.isName("for") && p.lex.peekN(1).isSym("$"):
			p.lex.next()
			for {
				v, err := p.parseVarName()
				if err != nil {
					return nil, err
				}
				fc := &ForClause{Var: v}
				if p.lex.peek().isName("at") {
					p.lex.next()
					fc.PosVar, err = p.parseVarName()
					if err != nil {
						return nil, err
					}
				}
				if err := p.expectName("in"); err != nil {
					return nil, err
				}
				fc.In, err = p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				fl.Clauses = append(fl.Clauses, fc)
				if !p.lex.peek().isSym(",") {
					break
				}
				p.lex.next()
			}
		case t.isName("let") && p.lex.peekN(1).isSym("$"):
			p.lex.next()
			for {
				v, err := p.parseVarName()
				if err != nil {
					return nil, err
				}
				if err := p.expectSym(":="); err != nil {
					return nil, err
				}
				e, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				fl.Clauses = append(fl.Clauses, &LetClause{Var: v, Expr: e})
				if !p.lex.peek().isSym(",") {
					break
				}
				p.lex.next()
			}
		default:
			goto clausesDone
		}
	}
clausesDone:
	if len(fl.Clauses) == 0 {
		return nil, p.err(p.lex.peek(), "FLWOR without for/let clause")
	}
	if p.lex.peek().isName("where") {
		p.lex.next()
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		fl.Where = w
	}
	if p.lex.peek().isName("stable") && p.lex.peekN(1).isName("order") {
		p.lex.next()
		fl.Stable = true
	}
	if p.lex.peek().isName("order") {
		p.lex.next()
		if err := p.expectName("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Key: key}
			if pk := p.lex.peek(); pk.isName("ascending") {
				p.lex.next()
			} else if pk.isName("descending") {
				p.lex.next()
				spec.Descending = true
			}
			if p.lex.peek().isName("empty") {
				p.lex.next()
				e := p.lex.next()
				switch {
				case e.isName("greatest"):
					spec.EmptyGreatest = true
				case e.isName("least"):
				default:
					return nil, p.err(e, "expected greatest or least")
				}
			}
			fl.Order = append(fl.Order, spec)
			if !p.lex.peek().isSym(",") {
				break
			}
			p.lex.next()
		}
	}
	if err := p.expectName("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	fl.Return = ret
	return fl, nil
}

func (p *parser) parseQuantified() (Expr, error) {
	q := &Quantified{Every: p.lex.next().isName("every")}
	for {
		v, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		if err := p.expectName("in"); err != nil {
			return nil, err
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		q.Vars = append(q.Vars, QVar{Var: v, In: e})
		if !p.lex.peek().isSym(",") {
			break
		}
		p.lex.next()
	}
	if err := p.expectName("satisfies"); err != nil {
		return nil, err
	}
	s, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	q.Satisfies = s
	return q, nil
}

func (p *parser) parseIf() (Expr, error) {
	p.lex.next() // if
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectName("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().isName("or") {
		p.lex.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Logic{Op: LogicOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().isName("and") {
		p.lex.next()
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &Logic{Op: LogicAnd, L: l, R: r}
	}
	return l, nil
}

var generalCmpSyms = map[string]xdm.CmpOp{
	"=": xdm.CmpEq, "!=": xdm.CmpNe, "<": xdm.CmpLt,
	"<=": xdm.CmpLe, ">": xdm.CmpGt, ">=": xdm.CmpGe,
}

var valueCmpNames = map[string]xdm.CmpOp{
	"eq": xdm.CmpEq, "ne": xdm.CmpNe, "lt": xdm.CmpLt,
	"le": xdm.CmpLe, "gt": xdm.CmpGt, "ge": xdm.CmpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	t := p.lex.peek()
	if t.kind == tSym {
		if op, ok := generalCmpSyms[t.text]; ok {
			p.lex.next()
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			return &GeneralCmp{Op: op, L: l, R: r}, nil
		}
		if t.text == "<<" || t.text == ">>" {
			p.lex.next()
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			op := NodeBefore
			if t.text == ">>" {
				op = NodeAfter
			}
			return &NodeCmp{Op: op, L: l, R: r}, nil
		}
	}
	if t.kind == tName {
		if op, ok := valueCmpNames[t.text]; ok {
			p.lex.next()
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			return &ValueCmp{Op: op, L: l, R: r}, nil
		}
		if t.text == "is" {
			p.lex.next()
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			return &NodeCmp{Op: NodeIs, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseRange() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.lex.peek().isName("to") {
		p.lex.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &RangeExpr{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.peek()
		var op xdm.ArithOp
		switch {
		case t.isSym("+"):
			op = xdm.OpAdd
		case t.isSym("-"):
			op = xdm.OpSub
		default:
			return l, nil
		}
		p.lex.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.peek()
		var op xdm.ArithOp
		switch {
		case t.isSym("*"):
			op = xdm.OpMul
		case t.isName("div"):
			op = xdm.OpDiv
		case t.isName("idiv"):
			op = xdm.OpIDiv
		case t.isName("mod"):
			op = xdm.OpMod
		default:
			return l, nil
		}
		p.lex.next()
		r, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		l = &Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnion() (Expr, error) {
	l, err := p.parseIntersectExcept()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().isSym("|") || p.lex.peek().isName("union") {
		p.lex.next()
		r, err := p.parseIntersectExcept()
		if err != nil {
			return nil, err
		}
		l = &SetOp{Kind: SetUnion, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseIntersectExcept() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.peek()
		var kind SetOpKind
		switch {
		case t.isName("intersect"):
			kind = SetIntersect
		case t.isName("except"):
			kind = SetExcept
		default:
			return l, nil
		}
		p.lex.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &SetOp{Kind: kind, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	neg := false
	for {
		t := p.lex.peek()
		if t.isSym("-") {
			p.lex.next()
			neg = !neg
			continue
		}
		if t.isSym("+") {
			p.lex.next()
			continue
		}
		break
	}
	e, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if neg {
		return &Neg{Expr: e}, nil
	}
	return e, nil
}

// parsePath parses a relative path expression: a first step (primary or
// axis step) followed by /step or //step segments.
func (p *parser) parsePath() (Expr, error) {
	if t := p.lex.peek(); t.isSym("/") || t.isSym("//") {
		return nil, p.err(t, "absolute paths are unsupported; navigate from fn:doc()")
	}
	var start Expr
	var steps []Step
	if p.startsAxisStep() {
		st, err := p.parseAxisStep()
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	} else {
		e, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		start = e
	}
	finish := func() Expr {
		if len(steps) == 0 {
			return start
		}
		e := &Path{Start: start, Steps: steps}
		start, steps = e, nil
		return e
	}
	for {
		t := p.lex.peek()
		if t.isSym("//") {
			p.lex.next()
			steps = append(steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
		} else if t.isSym("/") {
			p.lex.next()
		} else {
			break
		}
		// A path segment is an axis step, or the parenthesized name-test
		// union of the paper's running example, e/(c|d), which lowers to
		// e/child::c | e/child::d over the shared base e (the compiler's
		// DAG hash-consing reunifies the base, cf. Figure 10).
		if p.lex.peek().isSym("(") {
			tests, err := p.parseParenTests()
			if err != nil {
				return nil, err
			}
			base := finish()
			if base == nil {
				return nil, p.err(t, "parenthesized step without a base expression")
			}
			var u Expr
			for _, nt := range tests {
				branch := &Path{Start: base, Steps: []Step{{Axis: AxisChild, Test: nt}}}
				if u == nil {
					u = branch
				} else {
					u = &SetOp{Kind: SetUnion, L: u, R: branch}
				}
			}
			start, steps = u, nil
			continue
		}
		st, err := p.parseAxisStep()
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return start, nil
	}
	return &Path{Start: start, Steps: steps}, nil
}

// parseParenTests parses the (nt1|nt2|…) path segment form: a
// parenthesized union of node tests, as in $t//(c|d).
func (p *parser) parseParenTests() ([]NodeTest, error) {
	open := p.lex.next() // consume "("
	var names []NodeTest
	for {
		t := p.lex.next()
		var nt NodeTest
		switch {
		case t.isSym("*"):
			nt = NodeTest{Kind: TestWild}
		case t.kind == tName:
			var err error
			nt, err = p.finishNodeTest(t)
			if err != nil {
				return nil, err
			}
		default:
			return nil, p.err(t, "expected name test in parenthesized step")
		}
		names = append(names, nt)
		nxt := p.lex.next()
		if nxt.isSym("|") {
			continue
		}
		if nxt.isSym(")") {
			break
		}
		return nil, p.err(nxt, "expected | or ) in parenthesized step")
	}
	if len(names) == 0 {
		return nil, p.err(open, "empty parenthesized step")
	}
	return names, nil
}

// startsAxisStep reports whether the upcoming tokens begin an axis step
// rather than a primary expression.
func (p *parser) startsAxisStep() bool {
	t := p.lex.peek()
	switch {
	case t.isSym("@"), t.isSym(".."), t.isSym("*"):
		return true
	case t.kind == tName:
		n1 := p.lex.peekN(1)
		if n1.isSym("::") {
			return true
		}
		if n1.isSym("(") {
			// node()/text() are node tests; any other name( is a function.
			return t.text == "node" || t.text == "text"
		}
		// A bare name is a child step unless it is a keyword that starts
		// an expression (callers only reach here in expression position
		// where FLWOR/if/quantified were already dispatched).
		switch t.text {
		case "ordered", "unordered":
			return !n1.isSym("{")
		}
		return true
	default:
		return false
	}
}

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"self":               AxisSelf,
	"attribute":          AxisAttribute,
	"parent":             AxisParent,
}

func (p *parser) parseAxisStep() (Step, error) {
	t := p.lex.next()
	var st Step
	switch {
	case t.isSym(".."):
		st = Step{Axis: AxisParent, Test: NodeTest{Kind: TestNode}}
	case t.isSym("@"):
		nt, err := p.parseNodeTest()
		if err != nil {
			return Step{}, err
		}
		st = Step{Axis: AxisAttribute, Test: nt}
	case t.isSym("*"):
		st = Step{Axis: AxisChild, Test: NodeTest{Kind: TestWild}}
	case t.kind == tName && p.lex.peek().isSym("::"):
		axis, ok := axisNames[t.text]
		if !ok {
			return Step{}, p.err(t, "unsupported axis %q", t.text)
		}
		p.lex.next()
		nt, err := p.parseNodeTest()
		if err != nil {
			return Step{}, err
		}
		st = Step{Axis: axis, Test: nt}
	case t.kind == tName:
		nt, err := p.finishNodeTest(t)
		if err != nil {
			return Step{}, err
		}
		st = Step{Axis: AxisChild, Test: nt}
	default:
		return Step{}, p.err(t, "expected location step, found %q", t.String())
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return Step{}, err
	}
	st.Preds = preds
	return st, nil
}

func (p *parser) parseNodeTest() (NodeTest, error) {
	t := p.lex.next()
	if t.isSym("*") {
		return NodeTest{Kind: TestWild}, nil
	}
	if t.kind != tName {
		return NodeTest{}, p.err(t, "expected node test, found %q", t.String())
	}
	return p.finishNodeTest(t)
}

func (p *parser) finishNodeTest(t token) (NodeTest, error) {
	if (t.text == "node" || t.text == "text") && p.lex.peek().isSym("(") {
		p.lex.next()
		if err := p.expectSym(")"); err != nil {
			return NodeTest{}, err
		}
		if t.text == "node" {
			return NodeTest{Kind: TestNode}, nil
		}
		return NodeTest{Kind: TestText}, nil
	}
	return NodeTest{Kind: TestName, Name: t.text}, nil
}

func (p *parser) parsePredicates() ([]Expr, error) {
	var preds []Expr
	for p.lex.peek().isSym("[") {
		p.lex.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("]"); err != nil {
			return nil, err
		}
		preds = append(preds, e)
	}
	return preds, nil
}

// parsePostfix parses a primary expression followed by predicates.
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return nil, err
	}
	if len(preds) > 0 {
		return &Filter{Base: e, Preds: preds}, nil
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.lex.peek()
	switch {
	case t.kind == tInt:
		p.lex.next()
		return &IntLit{Val: t.i}, nil
	case t.kind == tDec:
		p.lex.next()
		return &DecLit{Val: t.f}, nil
	case t.kind == tStr:
		p.lex.next()
		return &StrLit{Val: t.s}, nil
	case t.isSym("$"):
		name, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		return &VarRef{Name: name}, nil
	case t.isSym("."):
		p.lex.next()
		return &ContextItem{}, nil
	case t.isSym("("):
		p.lex.next()
		if p.lex.peek().isSym(")") {
			p.lex.next()
			return &EmptySeq{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.isSym("<"):
		return p.parseDirectConstructor()
	case (t.isName("ordered") || t.isName("unordered")) && p.lex.peekN(1).isSym("{"):
		p.lex.next()
		mode := Ordered
		if t.isName("unordered") {
			mode = Unordered
		}
		if err := p.expectSym("{"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("}"); err != nil {
			return nil, err
		}
		return &OrderedExpr{Mode: mode, Expr: e}, nil
	case t.kind == tName && p.lex.peekN(1).isSym("("):
		return p.parseFuncCall()
	default:
		return nil, p.err(t, "unexpected %q", t.String())
	}
}

func (p *parser) parseFuncCall() (Expr, error) {
	t := p.lex.next()
	name := strings.TrimPrefix(t.text, "fn:")
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.lex.peek().isSym(")") {
		for {
			a, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.lex.peek().isSym(",") {
				break
			}
			p.lex.next()
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &FuncCall{Name: name, Args: args}, nil
}
