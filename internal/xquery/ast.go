// Package xquery contains the surface syntax of the XQuery subset the
// eXrQuy pipeline processes: lexer, parser, and abstract syntax. The
// subset covers everything the paper's evaluation exercises (the 20 XMark
// queries plus the running examples of §1/§2): FLWOR with positional
// variables and order by, quantifiers, full comparison families, path
// expressions with predicates, node set operations, direct constructors,
// ordered{}/unordered{} and prolog declarations.
package xquery

import (
	"fmt"
	"strings"

	"repro/internal/xdm"
)

// OrderingMode is XQuery's ordering mode (§2.1 of the paper).
type OrderingMode uint8

// Ordering modes. The spec calls ordered a "perceived default": engines
// may default to unordered; we default to ordered like Pathfinder.
const (
	Ordered OrderingMode = iota
	Unordered
)

// String names the mode as it appears in the prolog.
func (m OrderingMode) String() string {
	if m == Unordered {
		return "unordered"
	}
	return "ordered"
}

// Module is a parsed query: prolog declarations plus the body expression.
type Module struct {
	Ordering  OrderingMode
	Functions []*FuncDecl
	Variables []*VarDecl
	Body      Expr
}

// VarDecl is a prolog variable declaration: either initialized
// (declare variable $x := e;) or external (declare variable $x external;),
// to be bound by the host environment at execution time.
type VarDecl struct {
	Name     string
	Type     string // declared type, informational
	Init     Expr   // nil for external variables
	External bool
}

// FuncDecl is a prolog function declaration (declare function local:f…).
// Declared types are recorded but not enforced; functions are inlined
// during normalization and must not be recursive.
type FuncDecl struct {
	Name   string
	Params []Param
	Result string // declared result type, informational
	Body   Expr
}

// Param is a declared function parameter.
type Param struct {
	Name string
	Type string // declared type, informational
}

// Expr is any expression node.
type Expr interface {
	exprNode()
	String() string
}

// Axis enumerates the XPath axes the engine evaluates.
type Axis uint8

// Supported axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisAttribute
	AxisParent
)

// String returns the axis name.
func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	case AxisDescendantOrSelf:
		return "descendant-or-self"
	case AxisSelf:
		return "self"
	case AxisAttribute:
		return "attribute"
	case AxisParent:
		return "parent"
	default:
		return "?"
	}
}

// TestKind classifies node tests.
type TestKind uint8

// Node test kinds.
const (
	TestName TestKind = iota // name test: foo
	TestWild                 // *
	TestNode                 // node()
	TestText                 // text()
)

// NodeTest is the node test of a step.
type NodeTest struct {
	Kind TestKind
	Name string // for TestName
}

// String renders the test.
func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestWild:
		return "*"
	case TestNode:
		return "node()"
	default:
		return "text()"
	}
}

// Step is one location step with its predicates.
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

// String renders the step.
func (s Step) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s::%s", s.Axis, s.Test)
	for _, p := range s.Preds {
		fmt.Fprintf(&sb, "[%s]", p)
	}
	return sb.String()
}

// --- Expression nodes ---

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// DecLit is a decimal/double literal (both map to xs:double here).
type DecLit struct{ Val float64 }

// StrLit is a string literal.
type StrLit struct{ Val string }

// VarRef references a bound variable ($x).
type VarRef struct{ Name string }

// ContextItem is "." — the context item inside predicates.
type ContextItem struct{}

// EmptySeq is "()".
type EmptySeq struct{}

// Sequence is the comma operator (e1, e2, …), flattened at parse time.
type Sequence struct{ Items []Expr }

// Path is a (possibly rooted) path expression: Start/Step1/Step2/…
// Start may be nil, in which case the steps apply to the context item.
type Path struct {
	Start Expr
	Steps []Step
}

// Filter applies predicates to an arbitrary base expression: (e)[p].
type Filter struct {
	Base  Expr
	Preds []Expr
}

// ForClause and LetClause are FLWOR clauses.
type ForClause struct {
	Var    string
	PosVar string // "" if no "at $p"
	In     Expr
}

// LetClause binds a variable without iteration.
type LetClause struct {
	Var  string
	Expr Expr
}

// Clause is a for or let clause.
type Clause interface{ clauseNode() }

func (*ForClause) clauseNode() {}
func (*LetClause) clauseNode() {}

// OrderSpec is one order-by key.
type OrderSpec struct {
	Key           Expr
	Descending    bool
	EmptyGreatest bool
}

// FLWOR is a for/let/where/order by/return block.
type FLWOR struct {
	Clauses []Clause
	Where   Expr // nil if absent
	Order   []OrderSpec
	Stable  bool // stable order by: equal keys keep binding order
	Return  Expr
}

// QVar is one variable binding of a quantified expression.
type QVar struct {
	Var string
	In  Expr
}

// Quantified is some/every $x in e satisfies p.
type Quantified struct {
	Every     bool
	Vars      []QVar
	Satisfies Expr
}

// IfExpr is if (c) then t else e.
type IfExpr struct{ Cond, Then, Else Expr }

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   xdm.ArithOp
	L, R Expr
}

// Neg is unary minus.
type Neg struct{ Expr Expr }

// GeneralCmp is a general comparison (existential semantics).
type GeneralCmp struct {
	Op   xdm.CmpOp
	L, R Expr
}

// ValueCmp is a value comparison (eq, lt, …).
type ValueCmp struct {
	Op   xdm.CmpOp
	L, R Expr
}

// NodeCmpOp enumerates node comparisons.
type NodeCmpOp uint8

// Node comparison operators.
const (
	NodeBefore NodeCmpOp = iota // <<
	NodeAfter                   // >>
	NodeIs                      // is
)

// NodeCmp compares node identity/order.
type NodeCmp struct {
	Op   NodeCmpOp
	L, R Expr
}

// LogicOp enumerates boolean connectives.
type LogicOp uint8

// Boolean connectives.
const (
	LogicAnd LogicOp = iota
	LogicOr
)

// Logic is and/or.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// SetOpKind enumerates node set operations.
type SetOpKind uint8

// Node set operations.
const (
	SetUnion SetOpKind = iota
	SetIntersect
	SetExcept
)

// String names the operation.
func (k SetOpKind) String() string {
	switch k {
	case SetUnion:
		return "union"
	case SetIntersect:
		return "intersect"
	default:
		return "except"
	}
}

// SetOp is union/intersect/except over node sequences.
type SetOp struct {
	Kind SetOpKind
	L, R Expr
}

// RangeExpr is e1 to e2.
type RangeExpr struct{ L, R Expr }

// FuncCall is a (built-in or prolog-declared) function application; the
// "fn:" prefix is stripped by the parser.
type FuncCall struct {
	Name string
	Args []Expr
}

// OrderedExpr is ordered { e } / unordered { e }: it sets the ordering
// mode for the lexical scope of e.
type OrderedExpr struct {
	Mode OrderingMode
	Expr Expr
}

// AttrPart is one segment of an attribute value template: literal text or
// an embedded expression.
type AttrPart struct {
	Literal string
	Expr    Expr // nil for literal segments
}

// AttrCons is one attribute of a direct element constructor.
type AttrCons struct {
	Name  string
	Parts []AttrPart
}

// CharContent is literal text content inside a direct constructor (it
// constructs a text node, unlike StrLit which is an atomic string).
type CharContent struct{ Text string }

// ElemCons is a direct element constructor.
type ElemCons struct {
	Name    string
	Attrs   []AttrCons
	Content []Expr // CharContent or enclosed expressions
}

func (*IntLit) exprNode()      {}
func (*DecLit) exprNode()      {}
func (*StrLit) exprNode()      {}
func (*VarRef) exprNode()      {}
func (*ContextItem) exprNode() {}
func (*EmptySeq) exprNode()    {}
func (*Sequence) exprNode()    {}
func (*Path) exprNode()        {}
func (*Filter) exprNode()      {}
func (*FLWOR) exprNode()       {}
func (*Quantified) exprNode()  {}
func (*IfExpr) exprNode()      {}
func (*Arith) exprNode()       {}
func (*Neg) exprNode()         {}
func (*GeneralCmp) exprNode()  {}
func (*ValueCmp) exprNode()    {}
func (*NodeCmp) exprNode()     {}
func (*Logic) exprNode()       {}
func (*SetOp) exprNode()       {}
func (*RangeExpr) exprNode()   {}
func (*FuncCall) exprNode()    {}
func (*OrderedExpr) exprNode() {}
func (*ElemCons) exprNode()    {}
func (*CharContent) exprNode() {}

// --- String rendering (diagnostics, golden tests) ---

func (e *IntLit) String() string      { return fmt.Sprintf("%d", e.Val) }
func (e *DecLit) String() string      { return fmt.Sprintf("%g", e.Val) }
func (e *StrLit) String() string      { return fmt.Sprintf("%q", e.Val) }
func (e *VarRef) String() string      { return "$" + e.Name }
func (e *ContextItem) String() string { return "." }
func (e *EmptySeq) String() string    { return "()" }

func (e *Sequence) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e *Path) String() string {
	var sb strings.Builder
	if e.Start != nil {
		sb.WriteString(e.Start.String())
	}
	for _, s := range e.Steps {
		sb.WriteString("/" + s.String())
	}
	return sb.String()
}

func (e *Filter) String() string {
	var sb strings.Builder
	sb.WriteString("(" + e.Base.String() + ")")
	for _, p := range e.Preds {
		fmt.Fprintf(&sb, "[%s]", p)
	}
	return sb.String()
}

func (e *FLWOR) String() string {
	var sb strings.Builder
	for _, c := range e.Clauses {
		switch c := c.(type) {
		case *ForClause:
			fmt.Fprintf(&sb, "for $%s ", c.Var)
			if c.PosVar != "" {
				fmt.Fprintf(&sb, "at $%s ", c.PosVar)
			}
			fmt.Fprintf(&sb, "in %s ", c.In)
		case *LetClause:
			fmt.Fprintf(&sb, "let $%s := %s ", c.Var, c.Expr)
		}
	}
	if e.Where != nil {
		fmt.Fprintf(&sb, "where %s ", e.Where)
	}
	if len(e.Order) > 0 {
		sb.WriteString("order by ")
		for i, o := range e.Order {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Key.String())
			if o.Descending {
				sb.WriteString(" descending")
			}
		}
		sb.WriteString(" ")
	}
	fmt.Fprintf(&sb, "return %s", e.Return)
	return sb.String()
}

func (e *Quantified) String() string {
	var sb strings.Builder
	if e.Every {
		sb.WriteString("every ")
	} else {
		sb.WriteString("some ")
	}
	for i, v := range e.Vars {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "$%s in %s", v.Var, v.In)
	}
	fmt.Fprintf(&sb, " satisfies %s", e.Satisfies)
	return sb.String()
}

func (e *IfExpr) String() string {
	return fmt.Sprintf("if (%s) then %s else %s", e.Cond, e.Then, e.Else)
}

func (e *Arith) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e *Neg) String() string   { return fmt.Sprintf("-(%s)", e.Expr) }

func (e *GeneralCmp) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

func (e *ValueCmp) String() string {
	names := map[xdm.CmpOp]string{
		xdm.CmpEq: "eq", xdm.CmpNe: "ne", xdm.CmpLt: "lt",
		xdm.CmpLe: "le", xdm.CmpGt: "gt", xdm.CmpGe: "ge",
	}
	return fmt.Sprintf("(%s %s %s)", e.L, names[e.Op], e.R)
}

func (e *NodeCmp) String() string {
	ops := []string{"<<", ">>", "is"}
	return fmt.Sprintf("(%s %s %s)", e.L, ops[e.Op], e.R)
}

func (e *Logic) String() string {
	op := "and"
	if e.Op == LogicOr {
		op = "or"
	}
	return fmt.Sprintf("(%s %s %s)", e.L, op, e.R)
}

func (e *SetOp) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Kind, e.R) }

func (e *RangeExpr) String() string { return fmt.Sprintf("(%s to %s)", e.L, e.R) }

func (e *FuncCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e *OrderedExpr) String() string {
	return fmt.Sprintf("%s { %s }", e.Mode, e.Expr)
}

func (e *CharContent) String() string { return fmt.Sprintf("text{%q}", e.Text) }

func (e *ElemCons) String() string {
	var sb strings.Builder
	sb.WriteString("element " + e.Name + " {")
	for i, a := range e.Attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("attribute " + a.Name + " {")
		for j, p := range a.Parts {
			if j > 0 {
				sb.WriteString(", ")
			}
			if p.Expr != nil {
				sb.WriteString(p.Expr.String())
			} else {
				fmt.Fprintf(&sb, "%q", p.Literal)
			}
		}
		sb.WriteString("}")
	}
	for i, c := range e.Content {
		if i > 0 || len(e.Attrs) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.String())
	}
	sb.WriteString("}")
	return sb.String()
}
