package xmark

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func gen(t *testing.T, factor float64) *xmltree.Fragment {
	t.Helper()
	f := Generate(Config{Factor: factor})
	if err := xmltree.Validate(f); err != nil {
		t.Fatalf("invalid fragment: %v", err)
	}
	return f
}

// findPath descends from the document root along child element names.
func findPath(f *xmltree.Fragment, names ...string) []int32 {
	ctx := []int32{0}
	for _, name := range names {
		var next []int32
		for _, v := range ctx {
			for _, c := range f.Children(v) {
				if f.Kind[c] == xmltree.KindElem && f.Name[c] == name {
					next = append(next, c)
				}
			}
		}
		ctx = next
	}
	return ctx
}

func TestSchemaShape(t *testing.T) {
	f := gen(t, 0.002)
	c := CountsFor(0.002)
	if got := len(findPath(f, "site")); got != 1 {
		t.Fatalf("sites = %d", got)
	}
	if got := len(findPath(f, "site", "people", "person")); got != c.Persons {
		t.Errorf("persons = %d, want %d", got, c.Persons)
	}
	if got := len(findPath(f, "site", "open_auctions", "open_auction")); got != c.OpenAuctions {
		t.Errorf("open auctions = %d, want %d", got, c.OpenAuctions)
	}
	if got := len(findPath(f, "site", "closed_auctions", "closed_auction")); got != c.ClosedAuctions {
		t.Errorf("closed auctions = %d, want %d", got, c.ClosedAuctions)
	}
	if got := len(findPath(f, "site", "regions", "europe", "item")); got != c.ItemsEurope {
		t.Errorf("europe items = %d, want %d", got, c.ItemsEurope)
	}
	if got := len(findPath(f, "site", "categories", "category")); got != c.Categories {
		t.Errorf("categories = %d, want %d", got, c.Categories)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Factor: 0.001})
	b := Generate(Config{Factor: 0.001})
	sa := xmltree.SerializeToString(a, 0, xmltree.SerializeOptions{})
	sb := xmltree.SerializeToString(b, 0, xmltree.SerializeOptions{})
	if sa != sb {
		t.Fatal("same config produced different documents")
	}
	c := Generate(Config{Factor: 0.001, Seed: 7})
	sc := xmltree.SerializeToString(c, 0, xmltree.SerializeOptions{})
	if sa == sc {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestPersonFields(t *testing.T) {
	f := gen(t, 0.01)
	persons := findPath(f, "site", "people", "person")
	var withProfile, withIncome, withHomepage, withoutHomepage int
	for _, p := range persons {
		attrs := f.Attributes(p)
		if len(attrs) == 0 || f.Name[attrs[0]] != "id" {
			t.Fatalf("person %d lacks id attribute", p)
		}
		hasHome := false
		for _, c := range f.Children(p) {
			switch f.Name[c] {
			case "profile":
				withProfile++
				for _, a := range f.Attributes(c) {
					if f.Name[a] == "income" {
						withIncome++
					}
				}
			case "homepage":
				hasHome = true
			}
		}
		if hasHome {
			withHomepage++
		} else {
			withoutHomepage++
		}
	}
	n := len(persons)
	if withProfile == 0 || withProfile == n {
		t.Errorf("profiles = %d of %d; want a proper subset", withProfile, n)
	}
	if withIncome == 0 || withIncome == withProfile {
		t.Errorf("incomes = %d of %d profiles; want a proper subset (Q20 'na' bucket)", withIncome, withProfile)
	}
	if withHomepage == 0 || withoutHomepage == 0 {
		t.Errorf("homepages = %d/%d; Q17 needs both kinds", withHomepage, withoutHomepage)
	}
}

func TestQ15PathExists(t *testing.T) {
	f := gen(t, 0.02)
	hits := findPath(f, "site", "closed_auctions", "closed_auction",
		"annotation", "description", "parlist", "listitem", "parlist",
		"listitem", "text", "emph", "keyword")
	if len(hits) == 0 {
		t.Error("Q15 path has no witnesses; deepen annotation generation")
	}
}

func TestGoldAppearsInDescriptions(t *testing.T) {
	f := gen(t, 0.01)
	items := findPath(f, "site", "regions", "namerica", "item")
	hits := 0
	for _, it := range items {
		for _, c := range f.Children(it) {
			if f.Name[c] == "description" &&
				strings.Contains(f.StringValue(c), "gold") {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Error("no 'gold' descriptions; Q14 would select nothing")
	}
	if hits == len(items) {
		t.Error("every description contains 'gold'; Q14 would select everything")
	}
}

func TestBidderIncreaseNumeric(t *testing.T) {
	f := gen(t, 0.01)
	auctions := findPath(f, "site", "open_auctions", "open_auction")
	withBidders := 0
	for _, a := range auctions {
		for _, c := range f.Children(a) {
			if f.Name[c] == "bidder" {
				withBidders++
				break
			}
		}
	}
	if withBidders == 0 || withBidders == len(auctions) {
		t.Errorf("auctions with bidders = %d of %d; Q2/Q3 need a proper subset", withBidders, len(auctions))
	}
}

func TestWriteXMLParsesBack(t *testing.T) {
	var sb strings.Builder
	if err := WriteXML(&sb, Config{Factor: 0.001}); err != nil {
		t.Fatal(err)
	}
	f, err := xmltree.ParseString(sb.String(), "auction.xml", xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	direct := Generate(Config{Factor: 0.001})
	// Text-round-tripped and directly built fragments must agree node for node.
	if f.Len() != direct.Len() {
		t.Fatalf("round trip: %d nodes vs %d direct", f.Len(), direct.Len())
	}
	for i := 0; i < f.Len(); i++ {
		if f.Kind[i] != direct.Kind[i] || f.Name[i] != direct.Name[i] || f.Value[i] != direct.Value[i] {
			t.Fatalf("node %d differs: %v %q %q vs %v %q %q",
				i, f.Kind[i], f.Name[i], f.Value[i], direct.Kind[i], direct.Name[i], direct.Value[i])
		}
	}
}

func TestSizeCalibration(t *testing.T) {
	var sb strings.Builder
	if err := WriteXML(&sb, Config{Factor: 0.01}); err != nil {
		t.Fatal(err)
	}
	got := int64(sb.Len())
	want := int64(0.01 * ApproxBytesPerFactor)
	// Within a factor of two of the documented constant.
	if got < want/2 || got > want*2 {
		t.Errorf("factor 0.01 serialized to %d bytes; ApproxBytesPerFactor (%d) is off", got, ApproxBytesPerFactor)
	}
}

func TestCountsForMinimums(t *testing.T) {
	c := CountsFor(0)
	if c.Persons == 0 || c.OpenAuctions == 0 || c.ClosedAuctions == 0 ||
		c.Categories == 0 || c.TotalItems() == 0 {
		t.Errorf("zero factor must keep every entity class non-empty: %+v", c)
	}
}
