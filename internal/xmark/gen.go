package xmark

import (
	"fmt"
	"io"

	"repro/internal/xmltree"
)

// Config parameterizes document generation.
type Config struct {
	// Factor is the XMark scale factor; 1.0 corresponds to the canonical
	// instance with 25,500 registered persons (~75 MB serialized by this
	// generator, ~100 MB from the original xmlgen). Values well below 1.0
	// (0.001 … 0.3) are the practical range for in-memory runs.
	Factor float64
	// Seed selects the pseudo-random stream; the default 0 is replaced by
	// a fixed constant so that zero-value configs are deterministic too.
	Seed uint64
}

// Counts lists the entity cardinalities a factor implies, mirroring the
// proportions of the original xmlgen (items split over the six world
// regions as in xmlgen: africa 550 : asia 2000 : australia 2200 :
// europe 6000 : namerica 10000 : samerica 1000 per unit factor).
type Counts struct {
	Persons        int
	OpenAuctions   int
	ClosedAuctions int
	Categories     int
	ItemsAfrica    int
	ItemsAsia      int
	ItemsAustralia int
	ItemsEurope    int
	ItemsNamerica  int
	ItemsSamerica  int
}

// TotalItems sums the per-region item counts.
func (c Counts) TotalItems() int {
	return c.ItemsAfrica + c.ItemsAsia + c.ItemsAustralia +
		c.ItemsEurope + c.ItemsNamerica + c.ItemsSamerica
}

// CountsFor scales the canonical cardinalities, keeping every entity class
// non-empty so all 20 queries remain meaningful at tiny factors.
func CountsFor(factor float64) Counts {
	n := func(base int, min int) int {
		v := int(float64(base)*factor + 0.5)
		if v < min {
			return min
		}
		return v
	}
	return Counts{
		Persons:        n(25500, 8),
		OpenAuctions:   n(12000, 6),
		ClosedAuctions: n(9750, 6),
		Categories:     n(1000, 4),
		ItemsAfrica:    n(550, 2),
		ItemsAsia:      n(2000, 2),
		ItemsAustralia: n(2200, 2),
		ItemsEurope:    n(6000, 3),
		ItemsNamerica:  n(10000, 3),
		ItemsSamerica:  n(1000, 2),
	}
}

// ApproxBytesPerFactor is the approximate serialized size of a factor-1.0
// instance produced by this generator; use it to translate target document
// sizes into factors. (Calibrated by generating and serializing instances;
// see TestSizeCalibration.)
const ApproxBytesPerFactor = 75 << 20

// FactorForBytes returns the scale factor that approximately yields a
// serialized document of the given size.
func FactorForBytes(bytes int64) float64 {
	return float64(bytes) / float64(ApproxBytesPerFactor)
}

// emitter is the event sink the generator drives: xmltree.Builder
// satisfies it (materializing the order-encoded fragment), and the
// streaming XML writer satisfies it too, so a corpus much larger than
// RAM can be generated without ever holding it in memory.
type emitter interface {
	StartDoc(uri string)
	StartElem(name string)
	Attr(name, value string)
	Text(value string)
	EndElem()
}

type generator struct {
	r   *rng
	b   emitter
	cnt Counts
}

// Generate builds an auction document directly in the order-encoded form
// (no XML text round trip). The returned fragment has a document node at
// preorder rank 0, ready to be registered with a store under the name
// "auction.xml".
func Generate(cfg Config) *xmltree.Fragment {
	b := xmltree.NewBuilder()
	generate(b, cfg)
	return b.Close()
}

func generate(b emitter, cfg Config) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xe4c0de5eed
	}
	g := &generator{r: newRNG(seed), b: b, cnt: CountsFor(cfg.Factor)}
	g.b.StartDoc("auction.xml")
	g.site()
	g.b.EndElem() // close the document node (Builder.Close would do this)
}

// WriteXML generates a document and serializes it as XML text. It
// streams: events go straight to w through StreamXML, so the document is
// never materialized.
func WriteXML(w io.Writer, cfg Config) error {
	return StreamXML(w, cfg)
}

func (g *generator) elem(name string, body func()) {
	g.b.StartElem(name)
	body()
	g.b.EndElem()
}

func (g *generator) textElem(name, value string) {
	g.b.StartElem(name)
	g.b.Text(value)
	g.b.EndElem()
}

func (g *generator) site() {
	g.elem("site", func() {
		g.regions()
		g.categories()
		g.catgraph()
		g.people()
		g.openAuctions()
		g.closedAuctions()
	})
}

func (g *generator) regions() {
	item := 0
	region := func(name string, n int) {
		g.elem(name, func() {
			for i := 0; i < n; i++ {
				g.item(item)
				item++
			}
		})
	}
	g.elem("regions", func() {
		region("africa", g.cnt.ItemsAfrica)
		region("asia", g.cnt.ItemsAsia)
		region("australia", g.cnt.ItemsAustralia)
		region("europe", g.cnt.ItemsEurope)
		region("namerica", g.cnt.ItemsNamerica)
		region("samerica", g.cnt.ItemsSamerica)
	})
}

func (g *generator) item(id int) {
	r := g.r
	g.b.StartElem("item")
	g.b.Attr("id", fmt.Sprintf("item%d", id))
	if r.prob(0.1) {
		g.b.Attr("featured", "yes")
	}
	g.textElem("location", r.pick(countries))
	g.textElem("quantity", fmt.Sprintf("%d", r.rangeInt(1, 5)))
	g.textElem("name", r.sentence(r.rangeInt(1, 4)))
	g.elem("payment", func() { g.b.Text(r.pick(paymentForms)) })
	g.description()
	if r.prob(0.6) {
		g.textElem("shipping", r.pick(shipping))
	}
	nCat := r.rangeInt(1, 4)
	for i := 0; i < nCat; i++ {
		g.b.StartElem("incategory")
		g.b.Attr("category", fmt.Sprintf("category%d", r.intn(g.cnt.Categories)))
		g.b.EndElem()
	}
	g.elem("mailbox", func() {
		nMail := r.intn(3)
		for i := 0; i < nMail; i++ {
			g.elem("mail", func() {
				g.textElem("from", g.personName())
				g.textElem("to", g.personName())
				g.textElem("date", g.date())
				g.textContent()
			})
		}
	})
	g.b.EndElem()
}

// description emits <description> with either flat marked-up text or a
// parlist. Nested parlists reach the depth XMark Q15/Q16 traverse
// (description/parlist/listitem/parlist/listitem/text/emph/keyword).
func (g *generator) description() {
	g.elem("description", func() {
		if g.r.prob(0.65) {
			g.parlist(0)
		} else {
			g.textContent()
		}
	})
}

func (g *generator) parlist(depth int) {
	r := g.r
	g.elem("parlist", func() {
		n := r.rangeInt(1, 3)
		for i := 0; i < n; i++ {
			g.elem("listitem", func() {
				if depth < 2 && r.prob(0.45) {
					g.parlist(depth + 1)
				} else {
					g.textContent()
				}
			})
		}
	})
}

// textContent emits <text> with word runs and inline emph/keyword/bold
// markup, including the emph/keyword nesting Q15 requires.
func (g *generator) textContent() {
	r := g.r
	g.elem("text", func() {
		runs := r.rangeInt(1, 4)
		for i := 0; i < runs; i++ {
			g.b.Text(r.sentence(r.rangeInt(3, 12)) + " ")
			switch r.intn(4) {
			case 0:
				g.elem("emph", func() {
					g.textElem("keyword", r.sentence(r.rangeInt(1, 3)))
				})
			case 1:
				g.textElem("keyword", r.sentence(r.rangeInt(1, 2)))
			case 2:
				g.textElem("bold", r.sentence(r.rangeInt(1, 2)))
			case 3:
				g.textElem("emph", r.sentence(r.rangeInt(1, 2)))
			}
		}
		g.b.Text(r.sentence(r.rangeInt(2, 8)))
	})
}

func (g *generator) categories() {
	g.elem("categories", func() {
		for i := 0; i < g.cnt.Categories; i++ {
			g.b.StartElem("category")
			g.b.Attr("id", fmt.Sprintf("category%d", i))
			g.textElem("name", g.r.sentence(g.r.rangeInt(1, 3)))
			g.description()
			g.b.EndElem()
		}
	})
}

func (g *generator) catgraph() {
	g.elem("catgraph", func() {
		n := g.cnt.Categories
		for i := 0; i < n; i++ {
			g.b.StartElem("edge")
			g.b.Attr("from", fmt.Sprintf("category%d", g.r.intn(n)))
			g.b.Attr("to", fmt.Sprintf("category%d", g.r.intn(n)))
			g.b.EndElem()
		}
	})
}

func (g *generator) personName() string {
	return g.r.pick(firstNames) + " " + g.r.pick(lastNames)
}

func (g *generator) date() string {
	return fmt.Sprintf("%02d/%02d/%04d", g.r.rangeInt(1, 12), g.r.rangeInt(1, 28), g.r.rangeInt(1998, 2001))
}

func (g *generator) time() string {
	return fmt.Sprintf("%02d:%02d:%02d", g.r.intn(24), g.r.intn(60), g.r.intn(60))
}

func (g *generator) people() {
	g.elem("people", func() {
		for i := 0; i < g.cnt.Persons; i++ {
			g.person(i)
		}
	})
}

func (g *generator) person(id int) {
	r := g.r
	g.b.StartElem("person")
	g.b.Attr("id", fmt.Sprintf("person%d", id))
	name := g.personName()
	g.textElem("name", name)
	g.textElem("emailaddress", fmt.Sprintf("mailto:%s%d@example.com", lastNames[r.intn(len(lastNames))], id))
	if r.prob(0.4) {
		g.textElem("phone", fmt.Sprintf("+%d (%d) %d", r.rangeInt(1, 99), r.rangeInt(100, 999), r.rangeInt(1000000, 9999999)))
	}
	if r.prob(0.5) {
		g.elem("address", func() {
			g.textElem("street", fmt.Sprintf("%d %s", r.rangeInt(1, 99), r.pick(streets)))
			g.textElem("city", r.pick(cities))
			g.textElem("country", r.pick(countries))
			g.textElem("zipcode", fmt.Sprintf("%d", r.rangeInt(10000, 99999)))
		})
	}
	if r.prob(0.5) {
		g.textElem("homepage", fmt.Sprintf("http://www.example.com/~person%d", id))
	}
	if r.prob(0.6) {
		g.textElem("creditcard", fmt.Sprintf("%d %d %d %d", r.rangeInt(1000, 9999), r.rangeInt(1000, 9999), r.rangeInt(1000, 9999), r.rangeInt(1000, 9999)))
	}
	if r.prob(0.85) {
		g.b.StartElem("profile")
		// ~20 % of profiles lack @income; together with profile-less
		// persons this feeds the "na" bucket of Q20.
		if r.prob(0.8) {
			g.b.Attr("income", fmt.Sprintf("%.2f", 9876.5+r.f64()*120000))
		}
		nInterest := r.intn(5)
		for i := 0; i < nInterest; i++ {
			g.b.StartElem("interest")
			g.b.Attr("category", fmt.Sprintf("category%d", r.intn(g.cnt.Categories)))
			g.b.EndElem()
		}
		if r.prob(0.5) {
			g.textElem("education", r.pick(education))
		}
		if r.prob(0.7) {
			g.textElem("gender", []string{"male", "female"}[r.intn(2)])
		}
		g.textElem("business", []string{"Yes", "No"}[r.intn(2)])
		if r.prob(0.6) {
			g.textElem("age", fmt.Sprintf("%d", r.rangeInt(18, 90)))
		}
		g.b.EndElem()
	}
	if r.prob(0.4) {
		g.elem("watches", func() {
			n := r.rangeInt(1, 4)
			for i := 0; i < n; i++ {
				g.b.StartElem("watch")
				g.b.Attr("open_auction", fmt.Sprintf("open_auction%d", r.intn(g.cnt.OpenAuctions)))
				g.b.EndElem()
			}
		})
	}
	g.b.EndElem()
}

func (g *generator) openAuctions() {
	g.elem("open_auctions", func() {
		for i := 0; i < g.cnt.OpenAuctions; i++ {
			g.openAuction(i)
		}
	})
}

func (g *generator) openAuction(id int) {
	r := g.r
	g.b.StartElem("open_auction")
	g.b.Attr("id", fmt.Sprintf("open_auction%d", id))
	// Initial bids are uniform in [1.5, 300]; combined with the income
	// distribution this puts the selectivity of the Q11/Q12 comparison
	// income > 5000 * initial in the few-percent range the paper reports.
	initial := 1.5 + r.f64()*298.5
	g.textElem("initial", fmt.Sprintf("%.2f", initial))
	if r.prob(0.55) {
		g.textElem("reserve", fmt.Sprintf("%.2f", initial*(1.2+r.f64())))
	}
	nBid := r.intn(11)
	cur := initial
	for i := 0; i < nBid; i++ {
		inc := 1.5 * float64(r.rangeInt(1, 12))
		cur += inc
		g.elem("bidder", func() {
			g.textElem("date", g.date())
			g.textElem("time", g.time())
			g.b.StartElem("personref")
			g.b.Attr("person", fmt.Sprintf("person%d", r.intn(g.cnt.Persons)))
			g.b.EndElem()
			g.textElem("increase", fmt.Sprintf("%.2f", inc))
		})
	}
	g.textElem("current", fmt.Sprintf("%.2f", cur))
	if r.prob(0.3) {
		g.textElem("privacy", "Yes")
	}
	g.b.StartElem("itemref")
	g.b.Attr("item", fmt.Sprintf("item%d", r.intn(g.cnt.TotalItems())))
	g.b.EndElem()
	g.b.StartElem("seller")
	g.b.Attr("person", fmt.Sprintf("person%d", r.intn(g.cnt.Persons)))
	g.b.EndElem()
	g.annotation()
	g.textElem("quantity", fmt.Sprintf("%d", r.rangeInt(1, 5)))
	g.textElem("type", r.pick(auctionTypes))
	g.elem("interval", func() {
		g.textElem("start", g.date())
		g.textElem("end", g.date())
	})
	g.b.EndElem()
}

func (g *generator) annotation() {
	r := g.r
	g.elem("annotation", func() {
		g.b.StartElem("author")
		g.b.Attr("person", fmt.Sprintf("person%d", r.intn(g.cnt.Persons)))
		g.b.EndElem()
		g.description()
		g.textElem("happiness", r.pick(happinessLevels))
	})
}

func (g *generator) closedAuctions() {
	g.elem("closed_auctions", func() {
		for i := 0; i < g.cnt.ClosedAuctions; i++ {
			g.closedAuction()
		}
	})
}

func (g *generator) closedAuction() {
	r := g.r
	g.elem("closed_auction", func() {
		g.b.StartElem("seller")
		g.b.Attr("person", fmt.Sprintf("person%d", r.intn(g.cnt.Persons)))
		g.b.EndElem()
		g.b.StartElem("buyer")
		g.b.Attr("person", fmt.Sprintf("person%d", r.intn(g.cnt.Persons)))
		g.b.EndElem()
		g.b.StartElem("itemref")
		g.b.Attr("item", fmt.Sprintf("item%d", r.intn(g.cnt.TotalItems())))
		g.b.EndElem()
		g.textElem("price", fmt.Sprintf("%.2f", r.f64()*500))
		g.textElem("date", g.date())
		g.textElem("quantity", fmt.Sprintf("%d", r.rangeInt(1, 5)))
		g.textElem("type", r.pick(auctionTypes))
		g.annotation()
	})
}
