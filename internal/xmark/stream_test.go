package xmark

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// The streaming writer must render exactly what serializing the
// materialized fragment renders — the scale-smoke lane depends on the
// two generation paths producing one corpus.
func TestStreamMatchesSerialize(t *testing.T) {
	for _, factor := range []float64{0.001, 0.01} {
		cfg := Config{Factor: factor, Seed: 7}
		var streamed bytes.Buffer
		if err := StreamXML(&streamed, cfg); err != nil {
			t.Fatalf("StreamXML: %v", err)
		}
		var materialized bytes.Buffer
		f := Generate(cfg)
		if err := xmltree.Serialize(&materialized, f, 0, xmltree.SerializeOptions{}); err != nil {
			t.Fatalf("Serialize: %v", err)
		}
		if !bytes.Equal(streamed.Bytes(), materialized.Bytes()) {
			t.Fatalf("factor %g: streamed output differs from serialized fragment (%d vs %d bytes)",
				factor, streamed.Len(), materialized.Len())
		}
	}
}

// A fixed seed must yield identical bytes run over run — benchmark
// baselines and the differential CI lanes assume regenerable corpora.
func TestStreamDeterministicSeed(t *testing.T) {
	cfg := Config{Factor: 0.005, Seed: 42}
	var a, b bytes.Buffer
	if err := StreamXML(&a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := StreamXML(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different bytes")
	}
	var c bytes.Buffer
	if err := StreamXML(&c, Config{Factor: 0.005, Seed: 43}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical bytes (rng not seeded?)")
	}
}
