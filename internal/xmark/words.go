package xmark

// Vocabulary for generated prose. The original xmlgen samples Shakespeare;
// we use a fixed word list. "gold" is present with ordinary frequency so
// that XMark Q14 (contains(description, "gold")) selects a stable fraction
// of items.
var words = []string{
	"gold", "silver", "vintage", "rare", "antique", "mint", "condition",
	"auction", "bidder", "reserve", "shipping", "estate", "collector",
	"original", "signed", "limited", "edition", "classic", "ornate",
	"carved", "wooden", "brass", "copper", "velvet", "linen", "porcelain",
	"crystal", "amber", "ivory", "jade", "pearl", "ruby", "sapphire",
	"emerald", "bronze", "marble", "granite", "oak", "maple", "walnut",
	"cherry", "leather", "silk", "cotton", "wool", "glass", "ceramic",
	"painted", "etched", "engraved", "polished", "restored", "preserved",
	"authentic", "certified", "appraised", "museum", "gallery", "private",
	"collection", "century", "period", "style", "design", "pattern",
	"handle", "frame", "panel", "drawer", "cabinet", "table", "chair",
	"lamp", "clock", "watch", "ring", "necklace", "bracelet", "pendant",
	"coin", "stamp", "print", "poster", "book", "manuscript", "letter",
	"map", "globe", "telescope", "camera", "radio", "phonograph", "piano",
	"violin", "guitar", "flute", "drum", "tapestry", "rug", "quilt",
	"mirror", "vase", "bowl", "plate", "teapot", "goblet",
}

var countries = []string{
	"United States", "Germany", "France", "Japan", "Australia",
	"Netherlands", "Italy", "Spain", "Canada", "Brazil", "India",
}

var cities = []string{
	"Munich", "Amsterdam", "Tokyo", "Sydney", "Paris", "Rome", "Madrid",
	"Toronto", "Chicago", "Boston", "Seattle", "Berlin", "Lyon",
}

var firstNames = []string{
	"Torsten", "Jan", "Jens", "Maria", "Ana", "Ken", "Yuki", "Lena",
	"Omar", "Priya", "Sven", "Ines", "Paul", "Nora", "Ivan", "Wei",
	"Aoife", "Luca", "Emma", "Noah", "Mia", "Liam", "Zoe", "Max",
}

var lastNames = []string{
	"Grust", "Rittinger", "Teubner", "Schmidt", "Meyer", "Tanaka",
	"Nguyen", "Silva", "Kumar", "Olsen", "Moreau", "Rossi", "Garcia",
	"Novak", "Kowalski", "Chen", "Brown", "Smith", "Keller", "Weber",
}

var streets = []string{
	"Main St", "Oak Ave", "Elm St", "Park Rd", "High St", "Lake Dr",
	"Hill Rd", "River Ln", "Mill Ct", "Bay St",
}

var education = []string{
	"High School", "College", "Graduate School", "Other",
}

var auctionTypes = []string{"Regular", "Featured", "Dutch"}

var paymentForms = []string{
	"Creditcard", "Money order", "Personal Check", "Cash",
}

var shipping = []string{
	"Will ship only within country", "Will ship internationally",
	"Buyer pays fixed shipping charges", "See description for charges",
}

var happinessLevels = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"}

// sentence appends n words to a byte slice builder via pick.
func (r *rng) sentence(n int) string {
	buf := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, r.pick(words)...)
	}
	return string(buf)
}
