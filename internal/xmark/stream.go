package xmark

import (
	"bufio"
	"io"

	"repro/internal/xmltree"
)

// xmlWriter is an emitter that renders the event stream as XML text,
// byte-for-byte identical to xmltree.Serialize of the materialized
// fragment (deferred '>', self-closing empty elements, the same
// text/attribute escaping), while holding only the open-element stack.
type xmlWriter struct {
	w     *bufio.Writer
	stack []string
	inTag bool // start tag open, '>' not yet written
	err   error
}

func (x *xmlWriter) write(s string) {
	if x.err == nil {
		_, x.err = x.w.WriteString(s)
	}
}

// closeTag finishes a pending start tag before content follows.
func (x *xmlWriter) closeTag() {
	if x.inTag {
		x.write(">")
		x.inTag = false
	}
}

func (x *xmlWriter) StartDoc(uri string) {}

func (x *xmlWriter) StartElem(name string) {
	x.closeTag()
	x.write("<" + name)
	x.stack = append(x.stack, name)
	x.inTag = true
}

func (x *xmlWriter) Attr(name, value string) {
	x.write(" " + name + `="` + xmltree.EscapeAttr(value) + `"`)
}

func (x *xmlWriter) Text(value string) {
	// The Builder drops empty text nodes, so the serializer never sees
	// them; match that here.
	if value == "" {
		return
	}
	x.closeTag()
	x.write(xmltree.EscapeText(value))
}

func (x *xmlWriter) EndElem() {
	if len(x.stack) == 0 {
		return // closing the document node: nothing to render
	}
	name := x.stack[len(x.stack)-1]
	x.stack = x.stack[:len(x.stack)-1]
	if x.inTag {
		x.write("/>")
		x.inTag = false
		return
	}
	x.write("</" + name + ">")
}

// StreamXML generates an auction document and writes it to w as XML text
// incrementally: memory use is bounded by the element stack and the
// write buffer regardless of factor, so corpora far larger than RAM can
// be generated. The bytes are identical to serializing Generate(cfg)
// with the same config.
func StreamXML(w io.Writer, cfg Config) error {
	x := &xmlWriter{w: bufio.NewWriterSize(w, 1<<16)}
	generate(x, cfg)
	if x.err != nil {
		return x.err
	}
	return x.w.Flush()
}
