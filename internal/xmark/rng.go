// Package xmark generates deterministic, synthetic XMark benchmark
// documents ("auction.xml", Schmidt et al., VLDB 2002). The paper's
// evaluation (Table 2, Figure 12) runs the 20 XMark queries over xmlgen
// output; xmlgen is an external C program, so this package substitutes a
// generator with the same element structure and the same entity
// proportions, parameterized by the usual scale factor (factor 1.0 ≈
// 25,500 persons ≈ 100 MB serialized). All randomness derives from a
// splitmix64 stream seeded explicitly, so a (factor, seed) pair always
// yields byte-identical documents across runs and platforms.
package xmark

// rng is a splitmix64 pseudo-random stream. We avoid math/rand so the
// generated corpus can never drift with Go releases.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform int in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// f64 returns a uniform float64 in [0, 1).
func (r *rng) f64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// prob flips a coin with success probability p.
func (r *rng) prob(p float64) bool { return r.f64() < p }

// pick returns a uniformly chosen element.
func (r *rng) pick(list []string) string { return list[r.intn(len(list))] }
