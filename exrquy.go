// Package exrquy is a from-scratch Go reproduction of
//
//	Grust, Rittinger, Teubner: "eXrQuy: Order Indifference in XQuery",
//	ICDE 2007
//
// — a relational XQuery processor in the style of Pathfinder/MonetDB that
// exploits *order indifference*: XQuery contexts in which sequence or
// iteration order is immaterial (unordered { }, fn:unordered(),
// aggregates, quantifiers, general comparisons, EBV contexts, order by)
// compile to plans that replace the blocking row-numbering sorts (ρ, the
// paper's %) with free arbitrary numbering (#), after which column
// dependency analysis erases the dead order bookkeeping entirely.
//
// Quick start:
//
//	eng := exrquy.New()
//	_ = eng.LoadDocumentString("t.xml", "<a><b><c/><d/></b><c/></a>")
//	res, _ := eng.Query(`unordered { doc("t.xml")/a//(c|d) }`)
//	xml, _ := res.XML()
//
// The Engine compiles queries through the full pipeline
// (parse → normalize → loop-lifting compile → optimize → columnar
// execution); a reference tree-walking interpreter with strict ordered
// semantics is available via Reference for differential testing and as
// the conventional-processor baseline.
package exrquy

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/governor"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/qerr"
	"repro/internal/xdm"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// Error taxonomy. Every error returned by the Engine/Query API is
// classified under one of these sentinels; match with errors.Is, and use
// errors.As with *QueryError to read the pipeline phase, source position,
// or plan dump:
//
//	_, err := eng.Query(q)
//	if errors.Is(err, exrquy.ErrTimeout) { ... }
//	var qe *exrquy.QueryError
//	if errors.As(err, &qe) { log.Printf("phase %s: %v", qe.Phase, err) }
var (
	// ErrParse marks static syntax errors in queries or documents; the
	// QueryError carries a 1-based line/column position.
	ErrParse = qerr.ErrParse
	// ErrCompile marks static errors past parsing (unbound variables,
	// unsupported constructs, recursive functions).
	ErrCompile = qerr.ErrCompile
	// ErrCutoff groups both cutoff classes below, mirroring the paper's
	// "did not finish" methodology (30 s timeout, Figure 12 gaps).
	ErrCutoff = qerr.ErrCutoff
	// ErrTimeout marks wall-clock cutoffs (WithTimeout or a context
	// deadline); wraps ErrCutoff.
	ErrTimeout = qerr.ErrTimeout
	// ErrMemoryLimit marks cell-budget cutoffs (WithMemoryLimit); wraps
	// ErrCutoff.
	ErrMemoryLimit = qerr.ErrMemoryLimit
	// ErrCanceled marks cooperative context cancellation; the error also
	// wraps context.Canceled.
	ErrCanceled = qerr.ErrCanceled
	// ErrInternal marks recovered engine panics: the query failed, the
	// process survived, and the QueryError carries the phase, plan dump
	// and stack for diagnosis.
	ErrInternal = qerr.ErrInternal
	// ErrLimit marks tripped input guards (document size, nesting depth,
	// node count, query nesting); wraps ErrParse.
	ErrLimit = qerr.ErrLimit
	// ErrOverload marks load shedding by a resource governor: the query
	// was rejected before execution because the admission queue was full
	// or its queue deadline passed. Overload errors are retryable and may
	// carry a retry hint (RetryAfterOf).
	ErrOverload = qerr.ErrOverload
	// ErrRateLimited marks rejection by a per-client rate limit (the
	// serving layer's token buckets): this client is over its own budget,
	// independent of overall load. Distinct from ErrOverload by design —
	// both answer HTTP 429, but errors.Is tells them apart. Retryable;
	// RetryAfterOf carries the bucket's refill time.
	ErrRateLimited = qerr.ErrRateLimited
	// ErrCorrupt marks an on-disk document store that failed structural
	// validation when attached (truncated part file, bad magic, format
	// version skew, checksum mismatch, incomplete shard coverage). Not
	// retryable — the remedy is rebuilding the store.
	ErrCorrupt = qerr.ErrCorrupt
)

// IsRetryable reports whether err is transient — overload, rate
// limiting, timeout or cancellation — so the same query may succeed if
// simply retried (after the RetryAfterOf hint, when one is carried).
func IsRetryable(err error) bool { return qerr.IsRetryable(err) }

// RetryAfterOf extracts the retry hint from an overload error; ok is
// false when err carries none.
func RetryAfterOf(err error) (time.Duration, bool) { return qerr.RetryAfterOf(err) }

// QueryError is the structured error type behind the sentinels above.
type QueryError = qerr.Error

// Ordering selects the XQuery ordering mode applied to a query.
type Ordering int

// Ordering modes. OrderingFromProlog honours the query's own
// "declare ordering" (defaulting to ordered); the other two override it,
// which is how the benchmarks inject ordering mode unordered without
// editing query text.
const (
	OrderingFromProlog Ordering = iota
	Ordered
	Unordered
)

// Optimizations toggles the individual §4.1/§7 plan rewrites; the zero
// value disables all of them.
type Optimizations struct {
	ColumnAnalysis   bool // column dependency analysis + dead-operator pruning (§4.1)
	RownumRelax      bool // ρ → # via constant/key property inference (§7)
	StepMerge        bool // descendant-or-self::node()/child::nt → descendant::nt
	DisjointDistinct bool // drop duplicate elimination over disjoint step unions
}

// AllOptimizations enables every rewrite.
func AllOptimizations() Optimizations {
	return Optimizations{ColumnAnalysis: true, RownumRelax: true, StepMerge: true, DisjointDistinct: true}
}

type options struct {
	indifference bool
	ordering     Ordering
	optim        Optimizations
	timeout      time.Duration
	maxCells     int64
	intOrders    bool
	parallelism  int
	compiled     bool
	collect      bool
	tracer       Tracer
	governor     *governor.Governor
	storeBudget  int64
	scrub        StoreScrubConfig
}

// Option configures an Engine.
type Option func(*options)

// WithOrderIndifference toggles the order-indifference machinery as a
// whole (normalization rules, compiler rules FN:UNORDERED/LOC#/BIND#, and
// the optimizer). Disabled, the engine behaves like the order-ignorant
// baseline of the paper's §5 — fn:unordered() becomes the identity. The
// default is enabled.
func WithOrderIndifference(on bool) Option {
	return func(o *options) { o.indifference = on }
}

// WithOrdering overrides the ordering mode for every query.
func WithOrdering(mode Ordering) Option {
	return func(o *options) { o.ordering = mode }
}

// WithOptimizations selects individual plan rewrites (for ablations).
func WithOptimizations(opts Optimizations) Option {
	return func(o *options) { o.optim = opts }
}

// WithTimeout bounds query execution (the paper's experiments used 30 s).
func WithTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithMemoryLimit bounds the number of intermediate table cells one
// execution may materialize (0 = unlimited); exceeding it aborts with a
// cutoff error.
func WithMemoryLimit(cells int64) Option {
	return func(o *options) { o.maxCells = cells }
}

// WithInterestingOrders enables the engine's physical sortedness check on
// ρ operators (the paper's §6 pointer to Moerkotte/Neumann): already-
// ordered inputs skip their sort. Off by default — the paper's
// measurements pay every sort, and the reproduction does too.
func WithInterestingOrders(on bool) Option {
	return func(o *options) { o.intOrders = on }
}

// WithParallelism executes queries with the morsel-wise parallel engine:
// plan regions whose row order is provably unobservable (no live ρ, no
// order-sensitive aggregate — the same analysis that licenses # over ρ)
// are partitioned and evaluated across a pool of n workers; everything
// else runs on the serial path. n == 0 picks runtime.GOMAXPROCS(0);
// n == 1 forces the serial engine. Results are identical to serial
// execution. Off by default — the paper's engine is single-threaded, and
// the reproduction's measurements should be too unless asked.
func WithParallelism(n int) Option {
	return func(o *options) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		o.parallelism = n
	}
}

// WithCompiled toggles bytecode compilation of prepared plans. Enabled
// (the default), Compile flattens the optimized plan DAG into a linear
// register program once, and every execution of the Query runs the
// program instead of re-walking the DAG — which is what makes repeated
// executions of a cached plan cheap. Disabled, queries run on the
// tree-walking engine; results are byte-identical either way (the
// walked engine remains the differential reference), so off is purely a
// debugging/measurement escape hatch.
func WithCompiled(on bool) Option {
	return func(o *options) { o.compiled = on }
}

// Resource-governance re-exports. The governor lives in
// internal/governor; these aliases expose it without importing internal
// packages.
type (
	// Governor is a process-wide resource governor: admission control
	// with a bounded FIFO wait queue, load shedding (ErrOverload), a
	// shared memory ledger all admitted queries draw from, and graceful
	// degradation (parallel plans forced serial under pressure — safe
	// because only order-indifferent plan regions ever run parallel, so
	// serial and parallel execution produce identical results). Share one
	// Governor across every Engine in the process via WithGovernor.
	Governor = governor.Governor
	// GovernorConfig configures a Governor (see NewGovernor).
	GovernorConfig = governor.Config
	// GovernorStats is a point-in-time snapshot of a Governor's gauges
	// and counters.
	GovernorStats = governor.Stats
)

// NewGovernor builds a resource governor from cfg. The zero config is
// usable: 2×GOMAXPROCS admission slots, an 8×-deep wait queue, no queue
// deadline and an unlimited memory ledger.
func NewGovernor(cfg GovernorConfig) *Governor { return governor.New(cfg) }

// WithQuotaContext returns a context whose executions draw their
// per-query ledger account with the given byte quota instead of the
// governor's configured default — the hook a serving layer uses to map
// per-client quotas onto governor accounts while still sharing prepared
// plans across clients. No-op without WithGovernor.
func WithQuotaContext(ctx context.Context, bytes int64) context.Context {
	return governor.WithQuota(ctx, bytes)
}

// WithGovernor routes every execution of this Engine through g: queries
// are admitted (possibly queueing, possibly shed with ErrOverload),
// draw intermediate-result memory from g's shared ledger (exhaustion
// surfaces as ErrMemoryLimit), and run degraded when admitted under
// pressure. Pass the same *Governor to several Engines to govern them
// as one pool. Nil (the default) disables governance.
func WithGovernor(g *Governor) Option {
	return func(o *options) { o.governor = g }
}

// WithStoreBudget gives attached on-disk stores (AttachStore) their own
// byte ledger of the given size: sampled page residency across all
// mounts is charged against it, and exceeding it evicts store pages
// instead of failing queries — the knob that makes a corpus far larger
// than RAM queryable under a fixed paging budget. Without it, stores
// charge the governor's shared ledger when one is configured (corpus
// pages then compete with query intermediates), and run unbudgeted
// otherwise. 0 disables the dedicated budget.
func WithStoreBudget(bytes int64) Option {
	return func(o *options) { o.storeBudget = bytes }
}

// WithStoreScrub enables background scrubbing on every store attached
// to this Engine: a pacing-limited loop re-verifies part-file checksums
// (active mappings and standby replicas alike), quarantines corrupted
// files, restores them from healthy replicas, and fails suspect parts
// over — so silent on-disk corruption is repaired before a query trips
// on it. The zero config (Interval <= 0) disables the loop; ScrubStores
// still scrubs on demand.
func WithStoreScrub(cfg StoreScrubConfig) Option {
	return func(o *options) { o.scrub = cfg }
}

// Observability re-exports. The collection machinery lives in
// internal/obs; these aliases make the structured statistics usable from
// the public API without importing internal packages.
type (
	// Tracer receives a span per pipeline phase (category "phase"), per
	// executed operator ("op"), and — under WithParallelism — per morsel
	// ("morsel", on track worker+1). StartSpan returns the span closer.
	Tracer = obs.Tracer
	// RunStats is one execution's per-operator statistics (Result.Stats).
	RunStats = obs.RunStats
	// OpStats is one plan operator's measured statistics.
	OpStats = obs.OpStats
	// WorkerStats is one worker's share of a parallel operator's morsels.
	WorkerStats = obs.WorkerStats
	// JSONTrace is a Tracer writing Trace Event Format JSON, loadable in
	// chrome://tracing or Perfetto.
	JSONTrace = obs.JSONTrace
	// Metric is one engine-wide metric in a snapshot (see Metrics).
	Metric = obs.Metric
)

// NewJSONTrace returns a Tracer that streams Trace Event Format JSON to
// w; call Close after the traced work to terminate the JSON array.
func NewJSONTrace(w io.Writer) *JSONTrace { return obs.NewJSONTrace(w) }

// Metrics snapshots the process-wide engine metrics (queries executed,
// cells materialized, memo hits, morsels, query latency histogram),
// sorted by name. These counters are always on — they cost single atomic
// adds — and are cumulative across all Engines in the process.
func Metrics() []Metric { return obs.Default.Snapshot() }

// WriteMetrics writes the Metrics snapshot as "name value" text lines.
func WriteMetrics(w io.Writer) error { return obs.Default.Write(w) }

// WithCollect attaches per-operator statistics collection to every
// execution: Result.Stats reports rows, wall time, memo hits and morsel
// distribution per plan operator. Off by default; when off the only cost
// is one nil check per operator (zero allocations on the hot path).
func WithCollect(on bool) Option {
	return func(o *options) { o.collect = on }
}

// WithTracer streams execution spans to t; see Tracer for the span
// categories. Nil (the default) disables tracing.
func WithTracer(t Tracer) Option {
	return func(o *options) { o.tracer = t }
}

// Engine holds loaded documents and configuration. It is safe for
// concurrent use: queries may execute while documents are being loaded
// (the document registry is lock-guarded, and every execution works
// against a point-in-time snapshot of it — a query sees exactly the
// documents registered when it started).
type Engine struct {
	mu    sync.RWMutex
	store *xmltree.Store
	docs  map[string][]uint32
	opts  options
	// mounts tracks attached on-disk stores (AttachStore); mountsMu is
	// held shared by every execution so DetachStore can wait out queries
	// still reading mmap'd columns before unmapping them.
	mounts   map[string]*storeMount
	mountsMu sync.RWMutex
	// storeLedger is the dedicated paging budget for attached stores
	// (WithStoreBudget); nil = charge the governor's ledger, if any.
	storeLedger *xdm.Ledger
}

// register adds a parsed fragment to the store and registry.
func (e *Engine) register(name string, id uint32) {
	e.mu.Lock()
	e.docs[name] = []uint32{id}
	e.mu.Unlock()
}

// registerParts registers a multi-part (sharded) document: fn:doc(name)
// returns one root per id, in slice order.
func (e *Engine) registerParts(name string, ids []uint32) {
	e.mu.Lock()
	e.docs[name] = ids
	e.mu.Unlock()
}

// docsSnapshot copies the registry for one execution, so a concurrent
// LoadDocument cannot race with the running query's doc() lookups. The
// id slices are shared: they are immutable once registered.
func (e *Engine) docsSnapshot() map[string][]uint32 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := make(map[string][]uint32, len(e.docs))
	for n, ids := range e.docs {
		snap[n] = ids
	}
	return snap
}

// New creates an engine. By default order indifference and all plan
// rewrites are enabled and queries follow their prolog's ordering mode.
func New(opts ...Option) *Engine {
	o := options{indifference: true, optim: AllOptimizations(), compiled: true}
	for _, f := range opts {
		f(&o)
	}
	e := &Engine{
		store:  xmltree.NewStore(),
		docs:   make(map[string][]uint32),
		mounts: make(map[string]*storeMount),
		opts:   o,
	}
	if o.storeBudget > 0 {
		e.storeLedger = xdm.NewLedger(o.storeBudget)
	}
	return e
}

// LoadDocument parses an XML document from r and registers it under name
// for fn:doc(name). Input guards (xmltree.DefaultLimits: 1 GiB of raw
// XML, 1024 levels of nesting, ~67M nodes) bound what a hostile document
// can make the process materialize; violations return an error wrapping
// ErrLimit.
func (e *Engine) LoadDocument(name string, r io.Reader) error {
	f, err := xmltree.Parse(r, name, xmltree.DefaultLimits())
	if err != nil {
		return err
	}
	e.register(name, e.store.Add(f))
	return nil
}

// DocumentLimits re-exports the XML parser's input guards
// (xmltree.ParseOptions) so serving layers can tighten them per
// deployment — e.g. a small MaxBytes on an upload endpoint — without
// importing internal packages.
type DocumentLimits = xmltree.ParseOptions

// DefaultDocumentLimits returns the guards LoadDocument applies: 1 GiB of
// raw XML, 1024 levels of nesting, ~67M nodes.
func DefaultDocumentLimits() DocumentLimits { return xmltree.DefaultLimits() }

// LoadDocumentLimited is LoadDocument under caller-chosen input guards.
// Violations return an error wrapping ErrLimit (and therefore ErrParse).
func (e *Engine) LoadDocumentLimited(name string, r io.Reader, lim DocumentLimits) error {
	f, err := xmltree.Parse(r, name, lim)
	if err != nil {
		return err
	}
	e.register(name, e.store.Add(f))
	return nil
}

// RemoveDocument unregisters a document; fn:doc(name) in queries started
// afterwards fails. Queries already running keep their snapshot of the
// registry and finish unaffected. It reports whether name was registered.
func (e *Engine) RemoveDocument(name string) bool {
	e.mu.Lock()
	_, ok := e.docs[name]
	delete(e.docs, name)
	e.mu.Unlock()
	return ok
}

// LoadDocumentString is LoadDocument over a string.
func (e *Engine) LoadDocumentString(name, doc string) error {
	f, err := xmltree.ParseString(doc, name, xmltree.DefaultLimits())
	if err != nil {
		return err
	}
	e.register(name, e.store.Add(f))
	return nil
}

// LoadXMark generates a synthetic XMark auction document at the given
// scale factor (1.0 ≈ 25,500 persons) and registers it under name.
func (e *Engine) LoadXMark(name string, factor float64) {
	f := xmark.Generate(xmark.Config{Factor: factor})
	e.register(name, e.store.Add(f))
}

// Documents lists the registered document names in sorted order.
func (e *Engine) Documents() []string {
	e.mu.RLock()
	out := make([]string, 0, len(e.docs))
	for n := range e.docs {
		out = append(out, n)
	}
	e.mu.RUnlock()
	sort.Strings(out)
	return out
}

// DocumentInfo summarizes a loaded document.
type DocumentInfo struct {
	Nodes      int
	Elements   int
	Attributes int
	Texts      int
	MaxDepth   int
}

// DocumentStats returns node statistics for a loaded document, summed
// over all parts for a sharded corpus.
func (e *Engine) DocumentStats(name string) (DocumentInfo, error) {
	e.mu.RLock()
	ids, ok := e.docs[name]
	e.mu.RUnlock()
	if !ok {
		return DocumentInfo{}, fmt.Errorf("exrquy: unknown document %q", name)
	}
	var info DocumentInfo
	for _, id := range ids {
		st := e.store.Frag(id).ComputeStats()
		info.Nodes += st.Nodes
		info.Elements += st.Elements
		info.Attributes += st.Attrs
		info.Texts += st.Texts
		if d := int(st.MaxLevel); d > info.MaxDepth {
			info.MaxDepth = d
		}
	}
	return info, nil
}

func (e *Engine) coreConfig() core.Config {
	cfg := core.Config{
		Indifference:      e.opts.indifference,
		Timeout:           e.opts.timeout,
		MaxCells:          e.opts.maxCells,
		InterestingOrders: e.opts.intOrders,
		Parallelism:       e.opts.parallelism,
		Compiled:          e.opts.compiled,
		Collect:           e.opts.collect,
		Tracer:            e.opts.tracer,
		Governor:          e.opts.governor,
		StoreProbe:        e.storeProbe,
		Opt: opt.Options{
			ColumnAnalysis:   e.opts.optim.ColumnAnalysis,
			RownumRelax:      e.opts.optim.RownumRelax,
			StepMerge:        e.opts.optim.StepMerge,
			DisjointDistinct: e.opts.optim.DisjointDistinct,
		},
	}
	switch e.opts.ordering {
	case Ordered:
		m := xquery.Ordered
		cfg.ForceOrdering = &m
	case Unordered:
		m := xquery.Unordered
		cfg.ForceOrdering = &m
	}
	return cfg
}

// Compile prepares a query for (repeated) execution.
func (e *Engine) Compile(query string) (*Query, error) {
	return e.CompileWith(query, nil)
}

// CompileWith prepares a query binding its external prolog variables
// (declare variable $x external). Values may be Go strings, booleans,
// ints, floats, or slices thereof (bound as sequences).
func (e *Engine) CompileWith(query string, vars map[string]any) (*Query, error) {
	cfg := e.coreConfig()
	if len(vars) > 0 {
		cfg.Vars = make(map[string][]xdm.Item, len(vars))
		for name, v := range vars {
			items, err := toItems(v)
			if err != nil {
				return nil, fmt.Errorf("exrquy: variable $%s: %w", name, err)
			}
			cfg.Vars[name] = items
		}
	}
	p, err := core.Prepare(query, cfg)
	if err != nil {
		return nil, err
	}
	return &Query{prepared: p, eng: e, text: query}, nil
}

// QueryWith compiles with variable bindings and executes in one call.
func (e *Engine) QueryWith(query string, vars map[string]any) (*Result, error) {
	q, err := e.CompileWith(query, vars)
	if err != nil {
		return nil, err
	}
	return q.Execute()
}

// toItems converts a Go value to an XDM item sequence.
//
// Ownership: a []xdm.Item argument is adopted as-is, not copied — the
// engine takes ownership and the caller must not mutate it afterwards.
// This is the same convention the typed column constructors
// (xdm.IntColumn, xdm.FromItemsOwned, ...) use: the one party that built
// the slice hands it over, and no layer pays a defensive copy. All other
// slice types ([]string, []int, []any) are converted element-wise into a
// fresh slice, so those callers keep ownership of their input.
func toItems(v any) ([]xdm.Item, error) {
	switch v := v.(type) {
	case nil:
		return nil, nil
	case []xdm.Item:
		return v, nil
	case xdm.Item:
		return []xdm.Item{v}, nil
	case int:
		return []xdm.Item{xdm.NewInt(int64(v))}, nil
	case int32:
		return []xdm.Item{xdm.NewInt(int64(v))}, nil
	case int64:
		return []xdm.Item{xdm.NewInt(v)}, nil
	case float32:
		return []xdm.Item{xdm.NewDouble(float64(v))}, nil
	case float64:
		return []xdm.Item{xdm.NewDouble(v)}, nil
	case string:
		return []xdm.Item{xdm.NewString(v)}, nil
	case bool:
		return []xdm.Item{xdm.NewBool(v)}, nil
	case []string:
		out := make([]xdm.Item, len(v))
		for i, s := range v {
			out[i] = xdm.NewString(s)
		}
		return out, nil
	case []int:
		out := make([]xdm.Item, len(v))
		for i, n := range v {
			out[i] = xdm.NewInt(int64(n))
		}
		return out, nil
	case []any:
		var out []xdm.Item
		for _, el := range v {
			items, err := toItems(el)
			if err != nil {
				return nil, err
			}
			out = append(out, items...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unsupported value type %T", v)
	}
}

// Query compiles and executes in one call.
func (e *Engine) Query(query string) (*Result, error) {
	return e.QueryContext(context.Background(), query)
}

// QueryContext compiles and executes in one call under a context:
// ctx.Done() aborts a running query cooperatively on both the serial and
// the parallel path, returning an error wrapping ErrCanceled (or
// ErrTimeout when the context carried a deadline) and ctx's own error.
func (e *Engine) QueryContext(ctx context.Context, query string) (*Result, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, err
	}
	return q.ExecuteContext(ctx)
}

// Reference evaluates a query with the reference tree-walking interpreter
// (strict ordered semantics) — the correctness oracle and the
// conventional-processor baseline.
func (e *Engine) Reference(query string) (*Result, error) {
	e.mountsMu.RLock()
	ip := interp.New(e.store, e.docsSnapshot())
	res, err := ip.EvalString(query)
	e.mountsMu.RUnlock()
	if err != nil {
		return nil, err
	}
	return &Result{items: res.Items, store: res.Store, eng: e}, nil
}

// Query is a compiled query.
type Query struct {
	prepared *core.Prepared
	eng      *Engine
	text     string
}

// Execute runs the plan against the engine's documents.
func (q *Query) Execute() (*Result, error) {
	return q.ExecuteContext(context.Background())
}

// maxStoreFailovers bounds how many times one ExecuteContext call will
// fail a store over and re-execute after a retryable corrupt-store
// fault. Each retry consumes a replica swap; past the bound the fault
// surfaces to the caller (it is still retryable there if a standby
// remains).
const maxStoreFailovers = 3

// ExecuteContext runs the plan under a context; see QueryContext for the
// cancellation contract.
//
// Storage faults heal transparently: when execution aborts on a
// retryable corrupt-store error (a mounted part went suspect but a
// healthy replica remains), the engine fails the affected parts over to
// their standby replicas and re-executes — order indifference makes the
// affected plan regions restartable, so the retried run returns exactly
// the bytes the unfaulted run would have. Only a terminal ErrCorrupt
// (every replica of some part bad) reaches the caller.
func (q *Query) ExecuteContext(ctx context.Context) (*Result, error) {
	for attempt := 0; ; attempt++ {
		// Shared mount lock: a DetachStore must not unmap columns a running
		// query may still be scanning. Uncontended outside detach windows.
		q.eng.mountsMu.RLock()
		res, err := q.prepared.RunContext(ctx, q.eng.store, q.eng.docsSnapshot())
		q.eng.mountsMu.RUnlock()
		if err != nil {
			if attempt < maxStoreFailovers && qerr.IsRetryableCorrupt(err) && q.eng.failoverStores() {
				continue
			}
			return nil, err
		}
		return &Result{
			items: res.Items, store: res.Store, eng: q.eng, profile: res.Profile,
			elapsed: res.Elapsed, stats: res.Stats,
			degraded: res.Degraded, queueWait: res.QueueWait,
		}, nil
	}
}

// Explain renders the optimized plan DAG as indented text.
func (q *Query) Explain() string { return q.prepared.Explain() }

// ExplainProgram renders the bytecode program the plan compiled to:
// register assignments, pre-resolved operands, inferred column types and
// buffer release points, with each instruction joined back to its plan
// node by #id. Under WithCompiled(false) it reports that the plan is not
// compiled. The companion view to Explain.
func (q *Query) ExplainProgram() string { return q.prepared.ExplainProgram() }

// Analyze is EXPLAIN ANALYZE: it executes the query with statistics
// collection forced on (regardless of WithCollect) and returns the
// result alongside the plan rendering annotated with measured per-
// operator rows, wall time, memo hits and morsel distribution.
func (q *Query) Analyze() (*Result, string, error) {
	return q.AnalyzeContext(context.Background())
}

// AnalyzeContext is Analyze under a context (see QueryContext for the
// cancellation contract).
func (q *Query) AnalyzeContext(ctx context.Context) (*Result, string, error) {
	for attempt := 0; ; attempt++ {
		q.eng.mountsMu.RLock()
		res, text, err := q.prepared.Analyze(ctx, q.eng.store, q.eng.docsSnapshot())
		q.eng.mountsMu.RUnlock()
		if err != nil {
			if attempt < maxStoreFailovers && qerr.IsRetryableCorrupt(err) && q.eng.failoverStores() {
				continue
			}
			return nil, "", err
		}
		return &Result{
			items: res.Items, store: res.Store, eng: q.eng, profile: res.Profile,
			elapsed: res.Elapsed, stats: res.Stats,
			degraded: res.Degraded, queueWait: res.QueueWait,
		}, text, nil
	}
}

// Text returns the query source.
func (q *Query) Text() string { return q.text }

// Documents returns the fn:doc() URIs the compiled plan reads, in
// first-reference order. The set is exact and static (doc() only accepts
// string literals), which is what lets a serving layer invalidate cached
// plans for exactly the documents a reload touched.
func (q *Query) Documents() []string { return q.prepared.Documents() }

// OpCounts summarizes a plan: total operators, ρ sorts, # stamps.
type OpCounts struct {
	Operators int
	Sorts     int // ρ (rownum) — blocking sorts
	Stamps    int // # (rowid) — free numbering
}

// PlanStats reports operator counts before and after optimization — the
// quantities behind the paper's Figure 6/9 and §4.1 plan-size claims.
func (q *Query) PlanStats() (before, after OpCounts) {
	b, a := q.prepared.StatsBefore, q.prepared.StatsAfter
	return OpCounts{b.Operators, b.RowNums, b.RowIDs}, OpCounts{a.Operators, a.RowNums, a.RowIDs}
}

// ProfileEntry re-exports the engine's per-origin timing record.
type ProfileEntry = engine.ProfileEntry

// Result is an executed query result.
type Result struct {
	items     []xdm.Item
	store     *xmltree.Store
	eng       *Engine // for the shared mount lock during serialization
	profile   []ProfileEntry
	elapsed   time.Duration
	stats     *RunStats
	degraded  bool
	queueWait time.Duration
}

// Len returns the number of items in the result sequence.
func (r *Result) Len() int { return len(r.items) }

// XML serializes the full result sequence per the XQuery serialization
// rules.
func (r *Result) XML() (string, error) {
	// Node items may reference mmap'd store columns; hold the shared
	// mount lock so a concurrent DetachStore cannot unmap them while
	// they serialize.
	if r.eng != nil {
		r.eng.mountsMu.RLock()
		defer r.eng.mountsMu.RUnlock()
	}
	return xmltree.SerializeItems(r.store, r.items)
}

// Items serializes each item individually, preserving sequence order.
func (r *Result) Items() ([]string, error) {
	if r.eng != nil {
		r.eng.mountsMu.RLock()
		defer r.eng.mountsMu.RUnlock()
	}
	out := make([]string, len(r.items))
	for i := range r.items {
		s, err := xmltree.SerializeItems(r.store, r.items[i:i+1])
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Profile returns per-origin evaluation times (descending), reproducing
// the shape of the paper's Table 2; empty for Reference results.
func (r *Result) Profile() []ProfileEntry { return r.profile }

// Elapsed returns the wall-clock execution time (zero for Reference
// results).
func (r *Result) Elapsed() time.Duration { return r.elapsed }

// Stats returns the per-operator statistics of this execution, or nil
// unless the engine was built WithCollect (or the result came from
// Analyze). The RunStats marshals to JSON for external tooling.
func (r *Result) Stats() *RunStats { return r.stats }

// Degraded reports whether a resource governor downgraded this
// execution (parallel plan forced serial) because the process was under
// pressure when the query was admitted. Always false without
// WithGovernor. A degraded result is identical to the undegraded one —
// only order-indifferent plan regions run parallel in the first place.
func (r *Result) Degraded() bool { return r.degraded }

// QueueWait returns how long the query waited in the governor's
// admission queue before executing (zero without WithGovernor, or when
// a slot was free immediately).
func (r *Result) QueueWait() time.Duration { return r.queueWait }
