package exrquy

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/store"
	"repro/internal/xmark"
	"repro/internal/xmarkq"
)

// writeReplicated persists one XMark instance as a store sharded across
// nDirs directories with the given replication factor.
func writeReplicated(t testing.TB, factor float64, nDirs, replicas int) []string {
	t.Helper()
	frag := xmark.Generate(xmark.Config{Factor: factor})
	base := t.TempDir()
	dirs := make([]string, nDirs)
	for k := range dirs {
		dirs[k] = filepath.Join(base, fmt.Sprintf("shard%d", k))
	}
	if err := store.WriteDocOpts(dirs, "auction.xml", frag, store.WriteOptions{Replicas: replicas}); err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestStoreFailoverXMark is the failover acceptance gate: with a fault
// plan armed that corrupts one replica of one part on every query
// execution (alternating injected I/O errors and checksum mismatches),
// all 20 XMark queries against a replicated store must still return
// byte-identical results to the in-memory engine — on the bytecode VM
// and the tree-walking engine alike — because every fault finds a
// healthy standby replica to fail over to. The same plan against an
// unreplicated store must surface ErrCorrupt naming the part file, and
// never panic or return wrong bytes.
func TestStoreFailoverXMark(t *testing.T) {
	const factor = 0.002
	defer SetStoreFaults(nil)

	for _, compiled := range []bool{true, false} {
		SetStoreFaults(nil)
		ref := New(WithCompiled(compiled))
		ref.LoadXMark("auction.xml", factor)
		want := make(map[int]string)
		for _, q := range xmarkq.All() {
			res, err := ref.Query(q.Text)
			if err != nil {
				t.Fatalf("in-memory %s: %v", q.Name, err)
			}
			xml, err := res.XML()
			if err != nil {
				t.Fatal(err)
			}
			want[q.ID] = xml
		}

		t.Run(fmt.Sprintf("compiled=%v/replicated", compiled), func(t *testing.T) {
			dirs := writeReplicated(t, factor, 3, 2)
			eng := New(WithCompiled(compiled))
			if _, err := eng.AttachStore(dirs...); err != nil {
				t.Fatalf("attach: %v", err)
			}
			// Every top-level query faults exactly once. Executions number
			// 0,1,2,...; a faulted query's failover retry is the next
			// execution, so queries land on even numbers and retries on
			// odd ones: eio=4 faults executions 0,4,8,... and badcrc=2
			// the remaining even ones — alternating injected I/O errors
			// and checksum mismatches per query, with every retry clean.
			SetStoreFaults(&StoreFaultPlan{Seed: 0, EIOEvery: 4, BadCRCEvery: 2})
			defer SetStoreFaults(nil)
			before := obs.StoreFailoverTotal.Load()
			for _, q := range xmarkq.All() {
				res, err := eng.Query(q.Text)
				if err != nil {
					t.Fatalf("%s under faults: %v", q.Name, err)
				}
				got, err := res.XML()
				if err != nil {
					t.Fatal(err)
				}
				if got != want[q.ID] {
					t.Errorf("%s: failover run differs from in-memory engine\n got: %.200q\nwant: %.200q",
						q.Name, got, want[q.ID])
				}
			}
			if d := obs.StoreFailoverTotal.Load() - before; d < int64(len(xmarkq.All())) {
				t.Errorf("expected at least one failover per query, got %d for %d queries", d, len(xmarkq.All()))
			}
			SetStoreFaults(nil)
			if _, err := eng.DetachStore(dirs[0]); err != nil {
				t.Fatalf("detach: %v", err)
			}
		})

		t.Run(fmt.Sprintf("compiled=%v/unreplicated", compiled), func(t *testing.T) {
			dirs := writeReplicated(t, factor, 3, 1)
			eng := New(WithCompiled(compiled))
			if _, err := eng.AttachStore(dirs...); err != nil {
				t.Fatalf("attach: %v", err)
			}
			SetStoreFaults(&StoreFaultPlan{Seed: 0, EIOEvery: 1})
			defer SetStoreFaults(nil)
			_, err := eng.Query(xmarkq.All()[0].Text)
			if err == nil {
				t.Fatal("unreplicated store under faults returned a result")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
			if qerr.IsRetryableCorrupt(err) {
				t.Fatalf("fault with no standby replica must be terminal, got retryable %v", err)
			}
			if !strings.Contains(err.Error(), ".xrq") {
				t.Fatalf("terminal corrupt error must name the part file: %v", err)
			}
			SetStoreFaults(nil)
			if _, err := eng.DetachStore(dirs[0]); err != nil {
				t.Fatalf("detach: %v", err)
			}
		})
	}
}

// TestStoreFailoverConcurrent races querying workers against an armed
// fault plan, a scrubbing store, and concurrent detach/attach cycles.
// Run under -race in CI: every query must either succeed with the right
// bytes (failover healed it), fail with "unknown document" (raced a
// detach window), or fail with a classified corrupt error — never
// crash, never return wrong bytes.
func TestStoreFailoverConcurrent(t *testing.T) {
	dirs := writeReplicated(t, 0.001, 2, 2)
	defer SetStoreFaults(nil)

	eng := New(WithParallelism(4), WithStoreScrub(StoreScrubConfig{Interval: 5 * time.Millisecond}))
	if _, err := eng.AttachStore(dirs...); err != nil {
		t.Fatal(err)
	}
	SetStoreFaults(nil)
	resWant, err := eng.Query(`count(doc("auction.xml")//item)`)
	if err != nil {
		t.Fatal(err)
	}
	wantXML, err := resWant.XML()
	if err != nil {
		t.Fatal(err)
	}

	// Every third execution faults (mixed kinds).
	SetStoreFaults(&StoreFaultPlan{Seed: 1, EIOEvery: 3, BadCRCEvery: 5})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Query(`count(doc("auction.xml")//item)`)
				if err != nil {
					if strings.Contains(err.Error(), "unknown document") || errors.Is(err, ErrCorrupt) {
						continue
					}
					t.Errorf("query: %v", err)
					return
				}
				xml, err := res.XML()
				if err != nil {
					t.Errorf("serialize: %v", err)
					return
				}
				if xml != wantXML {
					t.Errorf("got %q, want %q", xml, wantXML)
					return
				}
			}
		}()
	}
	for cycle := 0; cycle < 6; cycle++ {
		if _, err := eng.DetachStore(dirs[0]); err != nil {
			t.Fatalf("detach cycle %d: %v", cycle, err)
		}
		if _, err := eng.AttachStore(dirs...); err != nil {
			t.Fatalf("attach cycle %d: %v", cycle, err)
		}
		eng.ScrubStores(0)
		eng.SampleStores()
	}
	close(stop)
	wg.Wait()
	SetStoreFaults(nil)
	if _, err := eng.DetachStore(dirs[0]); err != nil {
		t.Fatalf("final detach: %v", err)
	}
}
