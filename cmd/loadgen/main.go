// Command loadgen drives an exrquyd daemon with open-loop XQuery load
// and reports latency percentiles, achieved QPS, shed rate and the
// prepared-plan cache hit rate.
//
// Open loop means arrivals are scheduled by a clock, not by completions:
// a ticker fires at the target rate and drops each request into a
// bounded queue that -clients workers drain. When the daemon slows
// down, the queue backs up and overflows are counted instead of
// silently stretching the arrival schedule — the coordinated-omission
// mistake closed-loop generators make.
//
// With -json the run is written as a bench.TrajectoryReport whose rows
// use mode "server<clients>"; the benchdiff gate skips server* rows, so
// these files are informational trajectory data, never a CI gate.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8345 -qps 50 -clients 8 -duration 10s
//
// With -provision-xmark F the generator first uploads a synthetic XMark
// instance as auction.xml via PUT /documents, so it can drive a freshly
// booted empty daemon.
//
// Query traffic goes through the resilient internal/client: -retries N
// re-issues failed queries with capped jittered backoff (honoring the
// server's Retry-After hints, bounded by -retry-budget), and -hedge
// races a speculative duplicate against slow queries after -hedge-delay
// (default: the p95 of observed latencies). Safe because query reads
// are idempotent under order indifference; the run report and
// trajectory rows carry the retry/hedge/watchdog-kill counts.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/xmark"
	"repro/internal/xmarkq"
)

func main() {
	var (
		base       = flag.String("url", "http://127.0.0.1:8345", "exrquyd base URL")
		qps        = flag.Float64("qps", 50, "target aggregate arrival rate, queries/second")
		clients    = flag.Int("clients", 8, "concurrent worker connections")
		duration   = flag.Duration("duration", 10*time.Second, "measured run length")
		queryList  = flag.String("queries", "1,2,8,9,11", "comma-separated XMark query numbers for the mix")
		jsonOut    = flag.String("json", "", "write the run as a bench trajectory JSON file")
		key        = flag.String("key", "", "API key sent as X-API-Key")
		provision  = flag.Float64("provision-xmark", 0, "upload a synthetic XMark instance at this factor as auction.xml before the run")
		warm       = flag.Bool("warm", true, "run each mix query once before measuring (warms the plan cache)")
		retries    = flag.Int("retries", 0, "retries per query beyond the first attempt (0 = give up immediately)")
		budget     = flag.Float64("retry-budget", 0.2, "retry budget: retries allowed as a fraction of requests")
		hedge      = flag.Bool("hedge", false, "hedge slow queries with a speculative duplicate (idempotent GETs only)")
		hedgeDelay = flag.Duration("hedge-delay", 0, "fixed hedge trigger (0 = p95 of observed latencies)")
	)
	flag.Parse()
	if *qps <= 0 || *clients <= 0 {
		fatal("need -qps > 0 and -clients > 0")
	}

	mix, err := parseQueries(*queryList)
	if err != nil {
		fatal("%v", err)
	}
	baseURL := strings.TrimRight(*base, "/")
	lg := &generator{base: baseURL, key: *key,
		client: &http.Client{Timeout: 60 * time.Second},
		rc: client.New(client.Config{
			BaseURL:     baseURL,
			APIKey:      *key,
			MaxAttempts: *retries + 1,
			RetryBudget: *budget,
			Hedge:       *hedge,
			HedgeDelay:  *hedgeDelay,
		})}

	if *provision > 0 {
		var doc bytes.Buffer
		if err := xmark.WriteXML(&doc, xmark.Config{Factor: *provision}); err != nil {
			fatal("generate xmark: %v", err)
		}
		if err := lg.putDocument("auction.xml", doc.Bytes()); err != nil {
			fatal("provision auction.xml: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: provisioned XMark factor %g (%d bytes)\n", *provision, doc.Len())
	}
	if *warm {
		for _, id := range mix {
			if status, body, err := lg.query(id); err != nil {
				fatal("warm-up Q%d: %v", id, err)
			} else if status != http.StatusOK {
				fatal("warm-up Q%d: status %d: %s", id, status, firstLine(body))
			}
		}
	}

	before, err := lg.stats()
	if err != nil {
		fatal("stats: %v", err)
	}
	res := lg.run(mix, *qps, *clients, *duration)
	after, err := lg.stats()
	if err != nil {
		fatal("stats: %v", err)
	}
	hits := after.Cache.Hits - before.Cache.Hits
	misses := after.Cache.Misses - before.Cache.Misses
	hitPct := 0.0
	if hits+misses > 0 {
		hitPct = 100 * float64(hits) / float64(hits+misses)
	}
	cst := lg.rc.Stats()
	kills := after.Resilience.WatchdogKills - before.Resilience.WatchdogKills

	res.report(os.Stdout, *qps, *clients, hitPct, cst, kills)
	if *jsonOut != "" {
		rep := res.trajectory(*clients, *provision, hitPct, cst, kills)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *jsonOut, err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *jsonOut)
	}
	if res.errors > 0 {
		os.Exit(1)
	}
}

// generator holds the HTTP plumbing shared by all workers: a raw
// http.Client for document uploads and the resilient internal/client
// (retries, budget, hedging) for query traffic.
type generator struct {
	base   string
	key    string
	client *http.Client
	rc     *client.Client
}

func (g *generator) do(req *http.Request) (int, []byte, error) {
	if g.key != "" {
		req.Header.Set("X-API-Key", g.key)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func (g *generator) query(id int) (int, []byte, error) {
	resp, err := g.rc.Query(context.Background(), xmarkq.Get(id).Text)
	if err != nil {
		return 0, nil, err
	}
	return resp.Status, resp.Body, nil
}

func (g *generator) putDocument(name string, doc []byte) error {
	req, err := http.NewRequest(http.MethodPut, g.base+"/documents/"+name, bytes.NewReader(doc))
	if err != nil {
		return err
	}
	status, body, err := g.do(req)
	if err != nil {
		return err
	}
	if status != http.StatusCreated && status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, firstLine(body))
	}
	return nil
}

// daemonStats is the subset of GET /debug/stats loadgen reads.
type daemonStats struct {
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
	Resilience struct {
		WatchdogKills int64 `json:"watchdog_kills"`
	} `json:"resilience"`
}

func (g *generator) stats() (daemonStats, error) {
	var st daemonStats
	req, err := http.NewRequest(http.MethodGet, g.base+"/debug/stats", nil)
	if err != nil {
		return st, err
	}
	status, body, err := g.do(req)
	if err != nil {
		return st, err
	}
	if status != http.StatusOK {
		return st, fmt.Errorf("status %d: %s", status, firstLine(body))
	}
	return st, json.Unmarshal(body, &st)
}

// sample is one completed request.
type sample struct {
	query   int
	status  int
	elapsed time.Duration
}

// result aggregates a run.
type result struct {
	samples  []sample
	overflow int64 // arrivals dropped because the client-side queue was full
	errors   int64 // transport errors and non-200/429 statuses
	wall     time.Duration
}

// run executes the open loop: a ticker emits arrivals at the target rate
// into a bounded queue; workers drain it. The queue bound (4 per worker)
// keeps client-side waiting visible as overflow instead of unbounded
// latency inflation.
func (g *generator) run(mix []int, qps float64, clients int, duration time.Duration) *result {
	res := &result{}
	arrivals := make(chan int, clients*4)
	results := make(chan sample, clients)
	errs := make(chan error, 1)

	var workers sync.WaitGroup
	for w := 0; w < clients; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for id := range arrivals {
				start := time.Now()
				status, _, err := g.query(id)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					results <- sample{query: id, status: 0}
					continue
				}
				results <- sample{query: id, status: status, elapsed: time.Since(start)}
			}
		}()
	}
	// The collector drains results for the whole run so workers never
	// block on reporting — blocked workers would throttle arrivals and
	// turn the open loop into a closed one.
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for s := range results {
			res.samples = append(res.samples, s)
		}
	}()

	interval := time.Duration(float64(time.Second) / qps)
	ticker := time.NewTicker(interval)
	start := time.Now()
	deadline := start.Add(duration)
	next := 0
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		id := mix[next%len(mix)]
		next++
		select {
		case arrivals <- id:
		default:
			res.overflow++ // open loop: the arrival happened; the client couldn't carry it
		}
	}
	ticker.Stop()
	close(arrivals)
	workers.Wait()
	close(results)
	<-collected

	res.wall = time.Since(start)
	for _, s := range res.samples {
		if s.status != http.StatusOK && s.status != http.StatusTooManyRequests {
			res.errors++
		}
	}
	select {
	case err := <-errs:
		fmt.Fprintf(os.Stderr, "loadgen: first transport error: %v\n", err)
	default:
	}
	return res
}

// perQuery groups the run's samples by XMark query.
type perQuery struct {
	id        int
	ok, shed  int64
	latencies []time.Duration
}

func (r *result) byQuery() []*perQuery {
	m := map[int]*perQuery{}
	for _, s := range r.samples {
		q := m[s.query]
		if q == nil {
			q = &perQuery{id: s.query}
			m[s.query] = q
		}
		switch s.status {
		case http.StatusOK:
			q.ok++
			q.latencies = append(q.latencies, s.elapsed)
		case http.StatusTooManyRequests:
			q.shed++
		}
	}
	out := make([]*perQuery, 0, len(m))
	for _, q := range m {
		sort.Slice(q.latencies, func(i, j int) bool { return q.latencies[i] < q.latencies[j] })
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// pct picks the p-th percentile from sorted latencies (nearest rank).
func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (r *result) report(w io.Writer, qps float64, clients int, hitPct float64, cst client.Stats, kills int64) {
	total := int64(len(r.samples))
	achieved := float64(total) / r.wall.Seconds()
	fmt.Fprintf(w, "open loop: target %.0f qps, %d clients, %s wall\n", qps, clients, r.wall.Round(time.Millisecond))
	fmt.Fprintf(w, "completed %d (%.1f qps achieved), %d queue overflows, %d errors, cache hit rate %.1f%%\n",
		total, achieved, r.overflow, r.errors, hitPct)
	fmt.Fprintf(w, "resilience: %d retries (%d budget-denied), %d hedges (%d wins), %d watchdog kills\n",
		cst.Retries, cst.BudgetDenied, cst.Hedges, cst.HedgeWins, kills)
	fmt.Fprintf(w, "%-6s %8s %8s %12s %12s %12s\n", "query", "ok", "shed", "p50", "p95", "p99")
	for _, q := range r.byQuery() {
		fmt.Fprintf(w, "Q%-5d %8d %8d %12s %12s %12s\n", q.id, q.ok, q.shed,
			pct(q.latencies, 50).Round(time.Microsecond),
			pct(q.latencies, 95).Round(time.Microsecond),
			pct(q.latencies, 99).Round(time.Microsecond))
	}
}

// trajectory renders the run as a bench.TrajectoryReport with one
// "server<clients>" row per query in the mix. NsPerOp carries the p50 as
// in the contention rows; the benchdiff gate skips server* modes.
// Retries/hedges/watchdog kills are run totals repeated on each row.
func (r *result) trajectory(clients int, factor, hitPct float64, cst client.Stats, kills int64) *bench.TrajectoryReport {
	rep := &bench.TrajectoryReport{
		Factor:      factor,
		Workers:     clients,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Concurrency: clients,
		Meta: bench.TrajectoryMeta{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
	}
	mode := "server" + strconv.Itoa(clients)
	for _, q := range r.byQuery() {
		qps := float64(q.ok) / r.wall.Seconds()
		rep.Rows = append(rep.Rows, bench.TrajectoryRow{
			Query:         "Q" + strconv.Itoa(q.id),
			Mode:          mode,
			Typed:         true,
			NsPerOp:       pct(q.latencies, 50).Nanoseconds(),
			P95NsPerOp:    pct(q.latencies, 95).Nanoseconds(),
			P99NsPerOp:    pct(q.latencies, 99).Nanoseconds(),
			QPS:           qps,
			Shed:          q.shed,
			CacheHitPct:   hitPct,
			Retries:       cst.Retries,
			Hedges:        cst.Hedges,
			WatchdogKills: kills,
		})
	}
	return rep
}

func parseQueries(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad query number %q", part)
		}
		if id < 1 || id > 20 {
			return nil, fmt.Errorf("query number %d out of range 1..20", id)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty query mix")
	}
	return out, nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
