// Command exrquyd is the eXrQuy network query service: a long-running
// HTTP daemon serving concurrent XQuery traffic over the engine, with
// governor-backed admission control, a prepared-query plan cache,
// per-client API keys and graceful shutdown, plus a resilience layer —
// per-client rate limits (-rate-qps), a stuck-query watchdog
// (-watchdog), per-client circuit breakers (-breaker-failures) and a
// deterministic fault-injection hook for chaos drills (-chaos). See
// README "Serving" and "Resilience".
//
// Usage:
//
//	exrquyd [flags] [doc1.xml doc2.xml ...]
//
// Documents given as arguments are preloaded under their base names;
// -xmark generates a synthetic XMark instance as auction.xml. More
// documents can be uploaded (and hot-reloaded) at runtime with
// PUT /documents/{name}.
//
// Endpoints:
//
//	GET  /query?q=...        run a query (&analyze=1 for EXPLAIN ANALYZE,
//	                         &timeout=500ms for a per-request deadline)
//	POST /query              query text in the body
//	PUT  /documents/{name}   upload or hot-reload a document
//	DELETE /documents/{name} unregister a document
//	GET  /documents          list registered documents
//	POST /stores             attach an on-disk columnar store ({"dirs":[...]})
//	GET  /stores             list attached stores with paging residency
//	DELETE /stores?dir=D     detach the store mounted from D
//	POST /stores/scrub       re-verify all mounted part checksums now
//	                         (quarantine + re-replicate corrupt copies)
//	GET  /metrics            process-wide engine/governor/server metrics
//	GET  /debug/stats        structured daemon snapshot (JSON)
//	GET  /healthz            200 while serving, 503 while draining
//
// SIGINT/SIGTERM begin a graceful shutdown: admission closes (new
// queries answer 503 + Retry-After), in-flight queries drain through the
// governor, and the drain is bounded by -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	exrquy "repro"
	"repro/internal/resilience"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8345", "listen address (use :0 for an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts booting on :0)")
		xmarkF    = flag.Float64("xmark", 0, "preload a synthetic XMark instance at this factor as auction.xml")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-request query deadline")
		maxTime   = flag.Duration("max-timeout", 5*time.Minute, "upper bound for the ?timeout= request parameter")
		maxDoc    = flag.Int64("max-doc-bytes", 64<<20, "upload size limit for PUT /documents (bytes)")
		cacheSize = flag.Int("cache", 256, "prepared-query plan cache capacity (entries)")
		parallelN = flag.Int("parallel", 0, "morsel-parallel execution with this many workers (0 = serial, -1 = GOMAXPROCS)")
		compileOn = flag.Bool("compile", true, "compile cached plans to bytecode (off = tree-walking engine; flag is part of the plan-cache key)")
		govSlots  = flag.Int("gov-slots", 0, "admission slots (0 = 2x GOMAXPROCS)")
		govQueue  = flag.Int("gov-queue", 0, "admission queue depth (0 = 8x slots)")
		govWait   = flag.Duration("gov-wait", 0, "max time a query may wait queued before shedding (0 = unbounded)")
		govBytes  = flag.Int64("gov-bytes", 0, "shared memory ledger for all queries, bytes (0 = unlimited)")
		govQuery  = flag.Int64("gov-query-bytes", 0, "default per-query ledger quota, bytes (0 = bounded only by -gov-bytes)")
		apiKeys   = flag.String("api-keys", "", "comma-separated key=name[:quotaBytes[:qps[:burst]]] API keys (empty = open access)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain bound")
		rateQPS   = flag.Float64("rate-qps", 0, "default per-client sustained rate limit, queries/second (0 = off)")
		rateBurst = flag.Int("rate-burst", 0, "default per-client token-bucket burst (0 = ceil of -rate-qps)")
		watchdog  = flag.Duration("watchdog", 0, "stuck-query heartbeat threshold; silent queries are cancelled within 2x this (0 = off)")
		brkFails  = flag.Int("breaker-failures", 0, "per-client circuit-breaker trip threshold, consecutive serving failures (0 = off)")
		brkCool   = flag.Duration("breaker-cooldown", 0, "open-circuit cooldown before a half-open probe (0 = 5s)")
		chaos     = flag.String("chaos", "", "TESTING ONLY: arm deterministic fault injection on /query, e.g. seed=7,err500=17,reset=23,truncate=29:64,latency=13:3ms")
		stChaos   = flag.String("store-chaos", "", "TESTING ONLY: arm deterministic storage fault injection, e.g. seed=7,eio=11,badcrc=13,shortread=17,mmap=19,torn=23")
		scrubIvl  = flag.Duration("scrub-interval", 0, "background store scrub cadence: re-verify part checksums, quarantine corrupt replicas, restore from healthy copies (0 = off)")
		scrubBPS  = flag.Int64("scrub-bps", 0, "scrub read-rate pacing, bytes/second (0 = unpaced)")
	)
	var storeDirs multiFlag
	flag.Var(&storeDirs, "store", "mount an on-disk columnar store directory at boot (repeatable; comma-join directories holding shards of one corpus)")
	storeBytes := flag.Int64("store-bytes", 0, "dedicated paging budget for mounted stores, bytes (0 = charge the governor's shared ledger)")
	flag.Parse()

	clients, err := server.ParseAPIKeys(*apiKeys)
	if err != nil {
		fatal("%v", err)
	}
	faults, err := resilience.ParseFaultSpec(*chaos)
	if err != nil {
		fatal("%v", err)
	}
	if faults != nil {
		fmt.Fprintf(os.Stderr, "exrquyd: WARNING: fault injection armed on /query (-chaos %q) — chaos drills only\n", *chaos)
	}
	storeFaults, err := exrquy.ParseStoreFaultSpec(*stChaos)
	if err != nil {
		fatal("%v", err)
	}
	if storeFaults != nil {
		exrquy.SetStoreFaults(storeFaults)
		fmt.Fprintf(os.Stderr, "exrquyd: WARNING: storage fault injection armed (-store-chaos %q) — chaos drills only\n", *stChaos)
	}
	s := server.New(server.Config{
		Governor: exrquy.GovernorConfig{
			MaxConcurrent: *govSlots,
			MaxQueue:      *govQueue,
			QueueTimeout:  *govWait,
			MaxBytes:      *govBytes,
			QueryBytes:    *govQuery,
		},
		Parallelism:      *parallelN,
		StoreBudget:      *storeBytes,
		NoCompile:        !*compileOn,
		Timeout:          *timeout,
		MaxTimeout:       *maxTime,
		MaxDocBytes:      *maxDoc,
		CacheSize:        *cacheSize,
		Clients:          clients,
		DrainTimeout:     *drain,
		RateQPS:          *rateQPS,
		RateBurst:        *rateBurst,
		WatchdogTimeout:  *watchdog,
		BreakerFailures:  *brkFails,
		BreakerCooldown:  *brkCool,
		Faults:           faults,
		ScrubInterval:    *scrubIvl,
		ScrubBytesPerSec: *scrubBPS,
	})

	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal("open %s: %v", path, err)
		}
		err = s.Engine().LoadDocument(filepath.Base(path), f)
		f.Close()
		if err != nil {
			fatal("load %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "exrquyd: loaded %s\n", filepath.Base(path))
	}
	if *xmarkF > 0 {
		s.Engine().LoadXMark("auction.xml", *xmarkF)
		fmt.Fprintf(os.Stderr, "exrquyd: generated XMark factor %g as auction.xml\n", *xmarkF)
	}
	for _, spec := range storeDirs {
		uris, err := s.Engine().AttachStore(strings.Split(spec, ",")...)
		if err != nil {
			fatal("attach store %s: %v", spec, err)
		}
		fmt.Fprintf(os.Stderr, "exrquyd: mounted store %s (%s)\n", spec, strings.Join(uris, ", "))
	}

	if err := s.Listen(*addr); err != nil {
		fatal("listen %s: %v", *addr, err)
	}
	fmt.Printf("exrquyd: listening on http://%s\n", s.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			fatal("addr-file: %v", err)
		}
	}

	// Serve until a termination signal, then drain gracefully.
	errc := make(chan error, 1)
	go func() { errc <- s.Serve() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal("serve: %v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "exrquyd: %s received, draining (bound %s)\n", sig, *drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fatal("shutdown: %v", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		fatal("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "exrquyd: drained, bye")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "exrquyd: "+format+"\n", args...)
	os.Exit(1)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
