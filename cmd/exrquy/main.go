// Command exrquy runs XQuery expressions through the eXrQuy pipeline.
//
// Usage:
//
//	exrquy [flags] -q 'for $x in ...' doc1.xml doc2.xml
//	exrquy [flags] -f query.xq auction.xml
//	exrquy [flags] -xmark 0.01 -xq 8     (built-in XMark query 8)
//
// Documents are registered under their base file names for fn:doc().
// Use -xmark to generate and register a synthetic XMark instance as
// auction.xml instead of (or in addition to) loading files.
//
// Interrupting a running query (Ctrl-C) cancels it cooperatively and
// exits with the cutoff status. Exit codes map the error taxonomy:
//
//	0  success
//	1  dynamic/evaluation error
//	2  parse or compile error (static; position printed when known)
//	3  cutoff (timeout, memory limit) or cancellation
//	4  internal error (recovered engine panic; phase and plan printed)
//	5  overload (shed by the resource governor; retry after the printed hint)
//	6  corrupt on-disk store (bad magic, checksum mismatch, version skew)
//
// On-disk columnar stores built by xmarkgen -store (or Engine.WriteStore)
// mount with -store DIR; a corpus sharded across several directories
// mounts as -store DIR1,DIR2,... With -store-bytes N the mounted stores
// page under a dedicated N-byte budget, so a corpus far larger than RAM
// stays queryable.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	exrquy "repro"
	"repro/internal/xmarkq"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// stdout buffers result serialization; fatal flushes it before os.Exit so
// output already produced when a query is cut off reaches the terminal
// instead of dying in the buffer.
var stdout = bufio.NewWriter(os.Stdout)

// queryName labels cutoff diagnostics: the -f file name, or "(inline)"
// for -q queries. Set right after flag parsing.
var queryName = "(inline)"

func main() {
	var (
		queryText  = flag.String("q", "", "query text")
		queryFile  = flag.String("f", "", "file containing the query")
		xmarkQ     = flag.Int("xq", 0, "run built-in XMark query N (1-20) instead of -q/-f")
		xmarkF     = flag.Float64("xmark", 0, "generate an XMark instance at this factor and register it as auction.xml")
		mode       = flag.String("ordering", "prolog", "ordering mode: prolog, ordered, unordered")
		baseline   = flag.Bool("baseline", false, "disable order indifference (the order-ignorant baseline)")
		explain    = flag.Bool("explain", false, "print the optimized plan instead of executing")
		explainBC  = flag.Bool("explain-bytecode", false, "print the optimized plan and its compiled bytecode program instead of executing")
		compileOn  = flag.Bool("compile", true, "compile plans to bytecode (off = tree-walking engine)")
		analyze    = flag.Bool("analyze", false, "EXPLAIN ANALYZE: execute, then print the plan annotated with measured per-operator rows and times")
		traceFile  = flag.String("trace", "", "write a chrome://tracing JSON trace of the run to this file")
		metrics    = flag.Bool("metrics", false, "print the process-wide engine metrics after execution")
		profile    = flag.Bool("profile", false, "print the per-origin execution profile")
		stats      = flag.Bool("stats", false, "print plan statistics (operators, sorts, stamps)")
		reference  = flag.Bool("reference", false, "evaluate with the reference interpreter instead of the compiled pipeline")
		timeoutSec = flag.Float64("timeout", 0, "execution cutoff in seconds (0 = none)")
		maxCells   = flag.Int64("maxcells", 0, "memory cutoff in intermediate table cells (0 = none)")
		parallelN  = flag.Int("parallel", 0, "morsel-wise parallel execution with this many workers (0 = serial, -1 = GOMAXPROCS)")
		govSlots   = flag.Int("gov-slots", 0, "resource governor: admission slots (0 = no governor)")
		govQueue   = flag.Int("gov-queue", 0, "resource governor: admission queue depth (0 = 8x slots)")
		govWaitSec = flag.Float64("gov-wait", 0, "resource governor: max seconds a query may wait queued (0 = unbounded)")
		govBytes   = flag.Int64("gov-bytes", 0, "resource governor: global memory ledger in bytes (0 = unlimited)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of query execution to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after execution) to this file")
		scrub      = flag.Bool("scrub", false, "scrub mounted stores before executing: re-verify part checksums, quarantine corrupt replicas, restore from healthy copies (usable without a query)")
		stChaos    = flag.String("store-chaos", "", "TESTING ONLY: arm deterministic storage fault injection, e.g. seed=7,eio=11,badcrc=13,shortread=17,mmap=19,torn=23")
	)
	var storeDirs multiFlag
	flag.Var(&storeDirs, "store", "mount an on-disk columnar store directory (repeatable; comma-join directories holding shards of one corpus)")
	storeBytes := flag.Int64("store-bytes", 0, "dedicated paging budget for mounted stores, bytes (0 = charge the governor's ledger, if any)")
	flag.Parse()

	sources := 0
	for _, set := range []bool{*queryText != "", *queryFile != "", *xmarkQ != 0} {
		if set {
			sources++
		}
	}
	scrubOnly := sources == 0 && *scrub
	if sources != 1 && !scrubOnly {
		fatal(nil, "exactly one of -q, -f or -xq is required (or -scrub with -store and no query)")
	}
	query := *queryText
	if *queryFile != "" {
		queryName = *queryFile
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(nil, "read query: %v", err)
		}
		query = string(data)
	}
	if *xmarkQ != 0 {
		if *xmarkQ < 1 || *xmarkQ > 20 {
			fatal(nil, "-xq %d: XMark queries are numbered 1-20", *xmarkQ)
		}
		q := xmarkq.Get(*xmarkQ)
		queryName, query = q.Name, q.Text
	}
	defer stdout.Flush()

	opts := []exrquy.Option{exrquy.WithOrderIndifference(!*baseline)}
	switch *mode {
	case "prolog":
	case "ordered":
		opts = append(opts, exrquy.WithOrdering(exrquy.Ordered))
	case "unordered":
		opts = append(opts, exrquy.WithOrdering(exrquy.Unordered))
	default:
		fatal(nil, "unknown ordering mode %q", *mode)
	}
	if !*compileOn {
		opts = append(opts, exrquy.WithCompiled(false))
	}
	if *timeoutSec > 0 {
		opts = append(opts, exrquy.WithTimeout(time.Duration(*timeoutSec*float64(time.Second))))
	}
	if *maxCells > 0 {
		opts = append(opts, exrquy.WithMemoryLimit(*maxCells))
	}
	if *parallelN != 0 {
		opts = append(opts, exrquy.WithParallelism(*parallelN))
	}
	if *storeBytes > 0 {
		opts = append(opts, exrquy.WithStoreBudget(*storeBytes))
	}
	if *govSlots > 0 || *govBytes > 0 {
		opts = append(opts, exrquy.WithGovernor(exrquy.NewGovernor(exrquy.GovernorConfig{
			MaxConcurrent: *govSlots,
			MaxQueue:      *govQueue,
			QueueTimeout:  time.Duration(*govWaitSec * float64(time.Second)),
			MaxBytes:      *govBytes,
		})))
	}
	var trace *exrquy.JSONTrace
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(nil, "trace: %v", err)
		}
		defer f.Close()
		trace = exrquy.NewJSONTrace(f)
		defer trace.Close()
		opts = append(opts, exrquy.WithTracer(trace))
	}
	eng := exrquy.New(opts...)

	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(nil, "open %s: %v", path, err)
		}
		err = eng.LoadDocument(filepath.Base(path), f)
		f.Close()
		if err != nil {
			fatal(err, "load %s: %v", path, err)
		}
	}
	if faults, err := exrquy.ParseStoreFaultSpec(*stChaos); err != nil {
		fatal(nil, "%v", err)
	} else if faults != nil {
		exrquy.SetStoreFaults(faults)
		fmt.Fprintf(os.Stderr, "exrquy: WARNING: storage fault injection armed (-store-chaos %q) — chaos drills only\n", *stChaos)
	}
	for _, spec := range storeDirs {
		if _, err := eng.AttachStore(strings.Split(spec, ",")...); err != nil {
			fatal(err, "attach store %s: %v", spec, err)
		}
	}
	if *scrub {
		if len(storeDirs) == 0 {
			fatal(nil, "-scrub needs at least one -store mount")
		}
		for key, st := range eng.ScrubStores(0) {
			fmt.Fprintf(os.Stderr,
				"exrquy: scrubbed %s: %d parts verified, %d errors, %d quarantined, %d re-replicated\n",
				key, st.PartsVerified, st.Errors, st.Quarantined, st.Rereplicated)
		}
		if scrubOnly {
			return
		}
	}
	if *xmarkF > 0 {
		eng.LoadXMark("auction.xml", *xmarkF)
	}

	if *reference {
		res, err := eng.Reference(query)
		if err != nil {
			fatal(err, "%v", err)
		}
		printResult(res)
		return
	}

	q, err := eng.Compile(query)
	if err != nil {
		fatal(err, "%v", err)
	}
	if *stats {
		before, after := q.PlanStats()
		fmt.Fprintf(os.Stderr, "plan: %d ops, %d sorts (ρ), %d stamps (#)  ->  %d ops, %d sorts, %d stamps\n",
			before.Operators, before.Sorts, before.Stamps,
			after.Operators, after.Sorts, after.Stamps)
	}
	if *explain {
		fmt.Fprint(stdout, q.Explain())
		return
	}
	if *explainBC {
		// The algebra plan and its flattened register program side by
		// side: each instruction names its plan node by #id.
		fmt.Fprint(stdout, q.Explain())
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, q.ExplainProgram())
		return
	}
	// Ctrl-C cancels the running query cooperatively instead of killing
	// the process mid-execution.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Profiling brackets execution only: compilation and document loading
	// are done, so the profile shows engine kernels, not setup.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(nil, "cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(nil, "cpuprofile: %v", err)
		}
	}
	var res *exrquy.Result
	var analyzed string
	if *analyze {
		res, analyzed, err = q.AnalyzeContext(ctx)
	} else {
		res, err = q.ExecuteContext(ctx)
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fatal(nil, "memprofile: %v", ferr)
		}
		runtime.GC() // flush freed intermediates so the profile shows live data
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fatal(nil, "memprofile: %v", werr)
		}
		f.Close()
	}
	if err != nil {
		fatal(err, "%v", err)
	}
	if *analyze {
		// EXPLAIN ANALYZE prints the measured plan, not the result — the
		// query did run (the annotations are real), like PostgreSQL's.
		fmt.Fprint(stdout, analyzed)
	} else {
		printResult(res)
	}
	stdout.Flush() // results before the stderr reports below
	if *profile {
		fmt.Fprintf(os.Stderr, "\nexecution: %v\n", res.Elapsed())
		fmt.Fprintf(os.Stderr, "%-34s %12s %8s %12s\n", "origin", "time", "ops", "rows")
		for _, e := range res.Profile() {
			fmt.Fprintf(os.Stderr, "%-34s %12v %8d %12d\n", e.Origin, e.Duration.Round(time.Microsecond), e.Ops, e.Rows)
		}
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "\nengine metrics:")
		if werr := exrquy.WriteMetrics(os.Stderr); werr != nil {
			fatal(nil, "metrics: %v", werr)
		}
	}
}

func printResult(res *exrquy.Result) {
	xml, err := res.XML()
	if err != nil {
		fatal(err, "serialize: %v", err)
	}
	fmt.Fprintln(stdout, xml)
}

// exitCode maps the error taxonomy to distinct exit statuses.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 1
	case errors.Is(err, exrquy.ErrParse), errors.Is(err, exrquy.ErrCompile):
		return 2
	case errors.Is(err, exrquy.ErrOverload):
		return 5
	case errors.Is(err, exrquy.ErrCutoff), errors.Is(err, exrquy.ErrCanceled):
		return 3
	case errors.Is(err, exrquy.ErrInternal):
		return 4
	case errors.Is(err, exrquy.ErrCorrupt):
		return 6
	}
	return 1
}

// fatal flushes any partial output, prints the message plus taxonomy
// diagnostics (phase, source position, plan dump for internal errors;
// the query name for cutoffs, so a timeout in a multi-query script is
// attributable) and exits with the mapped status code.
func fatal(err error, format string, args ...any) {
	stdout.Flush() // os.Exit skips defers; partial output must not die buffered
	fmt.Fprintf(os.Stderr, "exrquy: "+format+"\n", args...)
	if errors.Is(err, exrquy.ErrCutoff) || errors.Is(err, exrquy.ErrCanceled) {
		fmt.Fprintf(os.Stderr, "exrquy:   query: %s\n", queryName)
	}
	var qe *exrquy.QueryError
	if errors.As(err, &qe) {
		if qe.Phase != "" {
			fmt.Fprintf(os.Stderr, "exrquy:   phase: %s\n", qe.Phase)
		}
		if qe.Line > 0 {
			fmt.Fprintf(os.Stderr, "exrquy:   position: line %d, column %d\n", qe.Line, qe.Col)
		}
		if qe.Plan != "" {
			fmt.Fprintf(os.Stderr, "exrquy:   plan:\n%s", qe.Plan)
		}
	}
	if ra, ok := exrquy.RetryAfterOf(err); ok {
		fmt.Fprintf(os.Stderr, "exrquy:   retry after: %v\n", ra)
	}
	os.Exit(exitCode(err))
}
