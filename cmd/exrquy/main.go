// Command exrquy runs XQuery expressions through the eXrQuy pipeline.
//
// Usage:
//
//	exrquy [flags] -q 'for $x in ...' doc1.xml doc2.xml
//	exrquy [flags] -f query.xq auction.xml
//
// Documents are registered under their base file names for fn:doc().
// Use -xmark to generate and register a synthetic XMark instance as
// auction.xml instead of (or in addition to) loading files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	exrquy "repro"
)

func main() {
	var (
		queryText  = flag.String("q", "", "query text")
		queryFile  = flag.String("f", "", "file containing the query")
		xmarkF     = flag.Float64("xmark", 0, "generate an XMark instance at this factor and register it as auction.xml")
		mode       = flag.String("ordering", "prolog", "ordering mode: prolog, ordered, unordered")
		baseline   = flag.Bool("baseline", false, "disable order indifference (the order-ignorant baseline)")
		explain    = flag.Bool("explain", false, "print the optimized plan instead of executing")
		profile    = flag.Bool("profile", false, "print the per-origin execution profile")
		stats      = flag.Bool("stats", false, "print plan statistics (operators, sorts, stamps)")
		reference  = flag.Bool("reference", false, "evaluate with the reference interpreter instead of the compiled pipeline")
		timeoutSec = flag.Float64("timeout", 0, "execution cutoff in seconds (0 = none)")
	)
	flag.Parse()

	if (*queryText == "") == (*queryFile == "") {
		fatal("exactly one of -q or -f is required")
	}
	query := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal("read query: %v", err)
		}
		query = string(data)
	}

	opts := []exrquy.Option{exrquy.WithOrderIndifference(!*baseline)}
	switch *mode {
	case "prolog":
	case "ordered":
		opts = append(opts, exrquy.WithOrdering(exrquy.Ordered))
	case "unordered":
		opts = append(opts, exrquy.WithOrdering(exrquy.Unordered))
	default:
		fatal("unknown ordering mode %q", *mode)
	}
	if *timeoutSec > 0 {
		opts = append(opts, exrquy.WithTimeout(time.Duration(*timeoutSec*float64(time.Second))))
	}
	eng := exrquy.New(opts...)

	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal("open %s: %v", path, err)
		}
		err = eng.LoadDocument(filepath.Base(path), f)
		f.Close()
		if err != nil {
			fatal("load %s: %v", path, err)
		}
	}
	if *xmarkF > 0 {
		eng.LoadXMark("auction.xml", *xmarkF)
	}

	if *reference {
		res, err := eng.Reference(query)
		if err != nil {
			fatal("%v", err)
		}
		printResult(res)
		return
	}

	q, err := eng.Compile(query)
	if err != nil {
		fatal("%v", err)
	}
	if *stats {
		before, after := q.PlanStats()
		fmt.Fprintf(os.Stderr, "plan: %d ops, %d sorts (ρ), %d stamps (#)  ->  %d ops, %d sorts, %d stamps\n",
			before.Operators, before.Sorts, before.Stamps,
			after.Operators, after.Sorts, after.Stamps)
	}
	if *explain {
		fmt.Print(q.Explain())
		return
	}
	res, err := q.Execute()
	if err != nil {
		fatal("%v", err)
	}
	printResult(res)
	if *profile {
		fmt.Fprintf(os.Stderr, "\nexecution: %v\n", res.Elapsed())
		fmt.Fprintf(os.Stderr, "%-34s %12s %8s %12s\n", "origin", "time", "ops", "rows")
		for _, e := range res.Profile() {
			fmt.Fprintf(os.Stderr, "%-34s %12v %8d %12d\n", e.Origin, e.Duration.Round(time.Microsecond), e.Ops, e.Rows)
		}
	}
}

func printResult(res *exrquy.Result) {
	xml, err := res.XML()
	if err != nil {
		fatal("serialize: %v", err)
	}
	fmt.Println(xml)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "exrquy: "+format+"\n", args...)
	os.Exit(1)
}
