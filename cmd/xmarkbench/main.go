// Command xmarkbench reproduces the paper's evaluation (§5):
//
//	xmarkbench -table2              Table 2: Q11 profile breakdown
//	xmarkbench -figure12            Figure 12: speedup sweep over Q1–Q20
//	xmarkbench -plansizes           Figure 6/9, §4.1: plan statistics
//	xmarkbench -ablation            per-rewrite timing ablation
//	xmarkbench -parallel            serial vs morsel-wise parallel execution
//	xmarkbench -json FILE           benchmark trajectory (typed vs boxed,
//	                                serial vs parallel, compiled vs
//	                                tree-walking) as JSON
//	xmarkbench -json FILE -concurrency N
//	                                also measure N concurrent clients through
//	                                a shared resource governor (throughput,
//	                                latency, shedding, degradation)
//	xmarkbench -json FILE -store-shards N
//	                                also measure the corpus served out-of-core
//	                                from the mmap'd columnar store, single-part
//	                                ("ooc") and sharded N ways ("shard<N>")
//	xmarkbench -json FILE -failover
//	                                also measure recovered latency from a
//	                                replicated store with one replica killed
//	                                before every timed run ("failover")
//
// Document sizes are scaled to in-memory Go scale; the paper's 30 s
// cutoff convention is kept (queries that exceed it report "cutoff", as
// the gaps in the paper's Figure 12 do).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		table2    = flag.Bool("table2", false, "reproduce Table 2 (Q11 profile)")
		figure12  = flag.Bool("figure12", false, "reproduce Figure 12 (speedup sweep)")
		planSizes = flag.Bool("plansizes", false, "reproduce the plan-size claims (Figure 6/9, §4.1)")
		ablation  = flag.Bool("ablation", false, "run the optimizer ablation")
		parallel  = flag.Bool("parallel", false, "measure serial vs morsel-wise parallel execution")
		jsonPath  = flag.String("json", "", "write a benchmark-trajectory JSON report to this file")
		queriesS  = flag.String("queries", "1,8,9,11", "comma-separated XMark query numbers for -json")
		workers   = flag.Int("workers", 0, "worker pool size for -parallel/-json (0 = GOMAXPROCS)")
		factor    = flag.Float64("factor", 0.05, "scale factor for -table2/-ablation/-parallel")
		factorsS  = flag.String("factors", "0.002,0.01,0.05,0.2", "comma-separated factors for -figure12")
		cutoff    = flag.Duration("cutoff", 30*time.Second, "per-run cutoff (paper: 30s)")
		repeats   = flag.Int("repeats", 3, "measurements per point (median)")
		stats     = flag.Bool("stats", false, "attach per-operator statistics (obs.OpStats) to every -json trajectory row")
		compileOn = flag.Bool("compile", true, "execute bytecode-compiled programs for -json rows; off runs everything tree-walking and drops the 'walked' control rows")
		concN     = flag.Int("concurrency", 0, "add contention rows to -json: N clients pushing queries through a shared resource governor (throughput, p50/p95 latency, shed and degraded counts)")
		shardsN   = flag.Int("store-shards", 0, "add out-of-core rows to -json: mode 'ooc' serves the corpus from a single-part mmap'd store, and N>1 adds mode 'shard<N>' over the corpus sharded N ways, both paging under a ledger a quarter of the mapped size")
		failover  = flag.Bool("failover", false, "add failover rows to -json: the corpus in a replicated store with one replica killed before every timed run, so p50/p95 price the full detect-swap-rerun recovery path")
	)
	flag.Parse()

	ran := false
	if *table2 {
		ran = true
		if _, err := bench.Table2(*factor, os.Stdout); err != nil {
			fatal("table2: %v", err)
		}
	}
	if *planSizes {
		ran = true
		if _, err := bench.PlanSizes(os.Stdout); err != nil {
			fatal("plansizes: %v", err)
		}
	}
	if *figure12 {
		ran = true
		var factors []float64
		for _, s := range strings.Split(*factorsS, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal("bad factor %q", s)
			}
			factors = append(factors, f)
		}
		bench.Figure12(factors, *cutoff, *repeats, os.Stdout)
	}
	if *ablation {
		ran = true
		if _, err := bench.Ablation(*factor, *repeats, os.Stdout); err != nil {
			fatal("ablation: %v", err)
		}
	}
	if *parallel {
		ran = true
		if _, err := bench.Parallel(*factor, *workers, *repeats, os.Stdout); err != nil {
			fatal("parallel: %v", err)
		}
	}
	if *jsonPath != "" {
		ran = true
		var ids []int
		for _, s := range strings.Split(*queriesS, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal("bad query number %q", s)
			}
			ids = append(ids, id)
		}
		opts := bench.TrajectoryOptions{
			Factor:      *factor,
			Queries:     ids,
			Workers:     *workers,
			Repeats:     *repeats,
			Stats:       *stats,
			Concurrency: *concN,
			NoCompile:   !*compileOn,
			StoreShards: *shardsN,
			Failover:    *failover,
		}
		if err := bench.WriteTrajectoryJSON(*jsonPath, opts, os.Stdout); err != nil {
			fatal("json: %v", err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xmarkbench: "+format+"\n", args...)
	os.Exit(1)
}
