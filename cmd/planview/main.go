// Command planview renders eXrQuy plan DAGs, reproducing the paper's plan
// figures:
//
//	planview -xmark Q6                       # Figure 6(a): ordered plan
//	planview -xmark Q6 -ordering unordered   # Figure 6(b)
//	planview -xmark Q6 -ordering unordered -optimize   # Figure 9 / §7
//	planview -q 'unordered { doc("t.xml")/a//(c|d) }' -optimize  # Figure 10
//	planview ... -dot | dot -Tsvg > plan.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/xmarkq"
	"repro/internal/xquery"
)

func main() {
	var (
		queryText = flag.String("q", "", "query text")
		xmarkQ    = flag.String("xmark", "", "an XMark query name (Q1..Q20)")
		mode      = flag.String("ordering", "prolog", "ordering mode: prolog, ordered, unordered")
		baseline  = flag.Bool("baseline", false, "disable the order-indifference rules")
		optimize  = flag.Bool("optimize", false, "run the optimizer (column analysis & friends)")
		dot       = flag.Bool("dot", false, "emit Graphviz dot instead of text")
	)
	flag.Parse()

	query := *queryText
	if *xmarkQ != "" {
		n, err := strconv.Atoi(strings.TrimPrefix(strings.ToUpper(*xmarkQ), "Q"))
		if err != nil || n < 1 || n > 20 {
			fatal("bad XMark query %q", *xmarkQ)
		}
		query = xmarkq.Get(n).Text
	}
	if query == "" {
		fatal("one of -q or -xmark is required")
	}

	cfg := core.Config{Indifference: !*baseline}
	if *optimize {
		cfg.Opt = opt.AllOptions()
	}
	switch *mode {
	case "prolog":
	case "ordered":
		m := xquery.Ordered
		cfg.ForceOrdering = &m
	case "unordered":
		m := xquery.Unordered
		cfg.ForceOrdering = &m
	default:
		fatal("unknown ordering mode %q", *mode)
	}

	p, err := core.Prepare(query, cfg)
	if err != nil {
		fatal("%v", err)
	}
	s := opt.PlanStats(p.Plan.Root)
	fmt.Fprintf(os.Stderr, "plan: %d operators, %d rownum (ρ, sorts), %d rowid (#)\n",
		s.Operators, s.RowNums, s.RowIDs)
	if *dot {
		fmt.Print(algebra.Dot(p.Plan.Root))
	} else {
		fmt.Print(p.Explain())
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "planview: "+format+"\n", args...)
	os.Exit(1)
}
