// Command xmarkgen generates synthetic XMark auction documents (the
// workload of the paper's evaluation) to stdout, to a file, or directly
// into an on-disk columnar store (optionally sharded). XML text output
// streams: memory stays bounded by the element stack regardless of
// factor.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/store"
	"repro/internal/xmark"
)

func main() {
	var (
		factor   = flag.Float64("factor", 0.01, "XMark scale factor (1.0 ≈ 25,500 persons)")
		seed     = flag.Uint64("seed", 0, "random seed (0 = fixed default)")
		out      = flag.String("o", "", "output file (default stdout)")
		storeDir = flag.String("store", "", "write an on-disk columnar store into this directory instead of XML text")
		shards   = flag.Int("shards", 1, "with -store: shard the document across N part directories (DIR/shard0..N-1)")
		replicas = flag.Int("replicas", 1, "with -store: write each part to N distinct shard directories (requires replicas <= shards); a mount fails over to a standby copy when one corrupts")
		uri      = flag.String("uri", "auction.xml", "with -store: document URI to register the corpus under")
		counts   = flag.Bool("counts", false, "print entity counts instead of generating")
	)
	flag.Parse()

	if *counts {
		c := xmark.CountsFor(*factor)
		fmt.Printf("factor %g: %d persons, %d open auctions, %d closed auctions, %d items, %d categories (~%.1f MB)\n",
			*factor, c.Persons, c.OpenAuctions, c.ClosedAuctions, c.TotalItems(), c.Categories,
			*factor*float64(xmark.ApproxBytesPerFactor)/(1<<20))
		return
	}

	if *storeDir != "" {
		frag := xmark.Generate(xmark.Config{Factor: *factor, Seed: *seed})
		dirs := []string{*storeDir}
		if *shards > 1 {
			dirs = dirs[:0]
			for k := 0; k < *shards; k++ {
				dirs = append(dirs, filepath.Join(*storeDir, fmt.Sprintf("shard%d", k)))
			}
		}
		if err := store.WriteDocOpts(dirs, *uri, frag, store.WriteOptions{Replicas: *replicas}); err != nil {
			fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
			os.Exit(1)
		}
		r := *replicas
		if r < 1 {
			r = 1
		}
		fmt.Fprintf(os.Stderr, "xmarkgen: wrote %q (%d nodes, %d part(s), %d replica(s)) under %s\n",
			*uri, frag.Len(), len(dirs), r, *storeDir)
		return
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriterSize(f, 1<<20)
	}
	if err := xmark.WriteXML(w, xmark.Config{Factor: *factor, Seed: *seed}); err != nil {
		fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
		os.Exit(1)
	}
}
