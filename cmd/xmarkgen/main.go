// Command xmarkgen generates synthetic XMark auction documents (the
// workload of the paper's evaluation) to stdout or a file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/xmark"
)

func main() {
	var (
		factor = flag.Float64("factor", 0.01, "XMark scale factor (1.0 ≈ 25,500 persons)")
		seed   = flag.Uint64("seed", 0, "random seed (0 = fixed default)")
		out    = flag.String("o", "", "output file (default stdout)")
		counts = flag.Bool("counts", false, "print entity counts instead of generating")
	)
	flag.Parse()

	if *counts {
		c := xmark.CountsFor(*factor)
		fmt.Printf("factor %g: %d persons, %d open auctions, %d closed auctions, %d items, %d categories (~%.1f MB)\n",
			*factor, c.Persons, c.OpenAuctions, c.ClosedAuctions, c.TotalItems(), c.Categories,
			*factor*float64(xmark.ApproxBytesPerFactor)/(1<<20))
		return
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriterSize(f, 1<<20)
	}
	if err := xmark.WriteXML(w, xmark.Config{Factor: *factor, Seed: *seed}); err != nil {
		fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
		os.Exit(1)
	}
}
