// Command benchdiff compares two benchmark-trajectory JSON files
// (xmarkbench -json) and fails when the current run regressed beyond the
// thresholds — the CI bench-gate.
//
// Usage:
//
//	benchdiff [flags] BASELINE.json CURRENT.json
//
// Exit status: 0 when every row is within thresholds, 1 on regression,
// 2 on usage or input errors (unreadable files, mismatched run shapes,
// coverage loss).
//
// Re-baselining: when a PR intentionally changes performance (and the
// gate therefore fails), regenerate the committed baseline on the CI
// runner class with
//
//	go run ./cmd/xmarkbench -json BENCH_PR<n>.json -queries 1,8,9,11 -factor 0.01 -workers 1 -repeats 5
//
// commit the new file alongside the change, and point the bench-gate job
// at it. Keep earlier BENCH_PR<n>.json files: the sequence is the
// repository's performance trajectory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		nsPct     = flag.Float64("ns-pct", bench.DefaultNsPct, "max allowed ns/op growth, percent")
		allocsPct = flag.Float64("allocs-pct", bench.DefaultAllocsPct, "max allowed allocs/op growth, percent")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	base, err := bench.LoadTrajectory(flag.Arg(0))
	if err != nil {
		fatal("baseline: %v", err)
	}
	cur, err := bench.LoadTrajectory(flag.Arg(1))
	if err != nil {
		fatal("current: %v", err)
	}
	entries, err := bench.Diff(base, cur, bench.DiffThresholds{NsPct: *nsPct, AllocsPct: *allocsPct})
	if err != nil {
		fatal("%v", err)
	}
	bench.WriteDiff(os.Stdout, entries)
	if bench.Regressed(entries) {
		fmt.Fprintf(os.Stderr, "benchdiff: performance regression against %s (thresholds: ns/op +%.0f%%, allocs/op +%.0f%%)\n",
			flag.Arg(0), *nsPct, *allocsPct)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok (thresholds: ns/op +%.0f%%, allocs/op +%.0f%%)\n", *nsPct, *allocsPct)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}
