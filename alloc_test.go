package exrquy

// End-to-end allocation regression bound: XMark Q1 under the unordered
// configuration at factor 0.01 measures ~3.0k allocs per run with the
// typed column layer and ~4.6k with boxed []Item storage, so the bound
// of 4.0k trips on a regression back to per-row boxing while leaving
// ~30% headroom for incidental churn.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/xmarkq"
)

func TestAllocXMarkQ1EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation bound needs the factor-0.01 instance")
	}
	env := benv()
	p, err := core.Prepare(xmarkq.Get(1).Text, unorderedCfg())
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := p.Run(env.Store, env.Docs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: buffer pools, GC heap target
	avg := testing.AllocsPerRun(5, run)
	if avg > 4000 {
		t.Errorf("XMark Q1 end-to-end: %.0f allocs/run, want <= 4000 (typed columns: ~3.0k, boxed: ~4.6k)", avg)
	}
}

// TestAllocCompiledNotWorseThanWalked pins the bytecode executor's
// allocation discipline: a compiled program run must allocate no more
// than the tree-walking engine evaluating the same plan. The VM's frame
// pool, precomputed release lists and skipped memo map are exactly the
// allocations the walked engine pays per run, so compiled should sit
// strictly below; the bound tolerates equality plus 2% for pool-reuse
// jitter in AllocsPerRun sampling.
func TestAllocCompiledNotWorseThanWalked(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation bound needs the factor-0.01 instance")
	}
	env := benv()
	measure := func(qn int, compiled bool) float64 {
		cfg := unorderedCfg()
		cfg.Compiled = compiled
		p, err := core.Prepare(xmarkq.Get(qn).Text, cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := func() {
			if _, err := p.Run(env.Store, env.Docs); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm-up: buffer pools, frame pool, GC heap target
		return testing.AllocsPerRun(5, run)
	}
	for _, qn := range []int{1, 8} {
		compiled := measure(qn, true)
		walked := measure(qn, false)
		if compiled > walked*1.02 {
			t.Errorf("XMark Q%d: compiled %.0f allocs/run vs walked %.0f — the bytecode executor must not out-allocate the tree walker", qn, compiled, walked)
		} else {
			t.Logf("XMark Q%d: compiled %.0f allocs/run, walked %.0f", qn, compiled, walked)
		}
	}
}

// TestAllocCollectDisabledZeroOverhead pins the observability contract:
// with Config.Collect off (the default), the per-operator statistics
// machinery must add zero allocations to the execution hot path — its
// only residue is one nil check per operator. The guard compares the
// same query with collection off and on: the disabled run must hit the
// tight historical count (Q1 typed: ~3.0k, measured 3046), and the
// enabled run must sit strictly above it (proof the machinery was live
// in the build, so the disabled figure is not vacuous).
func TestAllocCollectDisabledZeroOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation bound needs the factor-0.01 instance")
	}
	env := benv()
	measure := func(collect bool) float64 {
		cfg := unorderedCfg()
		cfg.Collect = collect
		p, err := core.Prepare(xmarkq.Get(1).Text, cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := func() {
			if _, err := p.Run(env.Store, env.Docs); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm-up: buffer pools, GC heap target
		return testing.AllocsPerRun(5, run)
	}
	off := measure(false)
	on := measure(true)
	if off > 3200 {
		t.Errorf("Collect=false: %.0f allocs/run, want <= 3200 (historical ~3046; collection must stay off the hot path)", off)
	}
	if on <= off {
		t.Errorf("Collect=true (%.0f allocs/run) not above Collect=false (%.0f): collection machinery appears dead", on, off)
	}
}
