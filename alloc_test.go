package exrquy

// End-to-end allocation regression bound: XMark Q1 under the unordered
// configuration at factor 0.01 measures ~3.0k allocs per run with the
// typed column layer and ~4.6k with boxed []Item storage, so the bound
// of 4.0k trips on a regression back to per-row boxing while leaving
// ~30% headroom for incidental churn.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/xmarkq"
)

func TestAllocXMarkQ1EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation bound needs the factor-0.01 instance")
	}
	env := benv()
	p, err := core.Prepare(xmarkq.Get(1).Text, unorderedCfg())
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := p.Run(env.Store, env.Docs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: buffer pools, GC heap target
	avg := testing.AllocsPerRun(5, run)
	if avg > 4000 {
		t.Errorf("XMark Q1 end-to-end: %.0f allocs/run, want <= 4000 (typed columns: ~3.0k, boxed: ~4.6k)", avg)
	}
}
