package exrquy

// Out-of-core document stores: mount persisted columnar stores
// (internal/store) into an Engine so fn:doc serves documents straight
// from mmap'd part files, demand-paged under a byte ledger (the
// dedicated WithStoreBudget ledger, or the governor's shared one),
// instead of parsing XML into the heap.

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/store"
)

// Storage fault-tolerance re-exports (the machinery lives in
// internal/store).
type (
	// StoreFaultPlan schedules deterministic storage faults — injected
	// I/O errors and checksum mismatches at query probes, short
	// reads/mmap failures at part opens, torn WriteStore crashes — for
	// tests and the -store-chaos CLI flags. See SetStoreFaults.
	StoreFaultPlan = store.FaultPlan
	// StoreScrubConfig configures background scrubbing (WithStoreScrub):
	// Interval between passes, BytesPerSec read-rate pacing.
	StoreScrubConfig = store.ScrubConfig
	// StoreScrubStats are one store's cumulative scrub counters.
	StoreScrubStats = store.ScrubStats
)

// SetStoreFaults arms a deterministic storage fault plan process-wide
// (nil disarms). Armed only — production never calls it; the healthy
// probe fast path is one atomic pointer load.
func SetStoreFaults(plan *StoreFaultPlan) { store.SetFaults(plan) }

// ParseStoreFaultSpec parses a -store-chaos specification like
// "seed=7,eio=11,badcrc=13" (keys: seed, eio, badcrc, shortread, mmap,
// torn). An empty spec returns nil (no faults).
func ParseStoreFaultSpec(spec string) (*StoreFaultPlan, error) { return store.ParseFaultSpec(spec) }

// storeMount is one attached on-disk store and the doc URIs it
// contributed to the registry.
type storeMount struct {
	key  string
	dirs []string
	uris []string
	st   *store.Store
}

// StoreMountInfo describes one attached store for observability.
type StoreMountInfo struct {
	Key   string              `json:"key"`
	Dirs  []string            `json:"dirs"`
	URIs  []string            `json:"uris"`
	Stats store.StatsSnapshot `json:"stats"`
}

// storeKey canonicalizes the mount key: the first directory's absolute
// path (best effort — a non-resolvable path keys as given).
func storeKey(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		return abs
	}
	return dir
}

// AttachStore mounts the on-disk stores in dirs (a document sharded
// across several directories is reassembled when the dirs jointly cover
// its parts) and registers every document they hold, replacing any
// same-named registry entries. The mount is keyed by the first
// directory; it returns the mounted document URIs.
//
// The store's sampled residency is charged to a byte ledger: the
// dedicated store ledger when the engine was built WithStoreBudget,
// else the governor's shared ledger when one is configured (corpus
// pages then compete with query intermediates). Under pressure the
// store evicts pages rather than failing queries.
func (e *Engine) AttachStore(dirs ...string) ([]string, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("exrquy: AttachStore needs at least one directory")
	}
	key := storeKey(dirs[0])
	e.mu.Lock()
	_, dup := e.mounts[key]
	e.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("exrquy: store %s already attached", key)
	}
	led := e.storeLedger
	if led == nil && e.opts.governor != nil {
		led = e.opts.governor.Ledger()
	}
	st, err := store.Open(dirs, store.Options{Ledger: led, OnHeal: e.registerHealed})
	if err != nil {
		return nil, err
	}
	m := &storeMount{key: key, dirs: append([]string(nil), dirs...), st: st}
	e.mu.Lock()
	if _, dup := e.mounts[key]; dup {
		e.mu.Unlock()
		st.Close()
		return nil, fmt.Errorf("exrquy: store %s already attached", key)
	}
	for _, d := range st.Docs() {
		id := e.store.Add(d.Frag)
		e.docs[d.URI] = []uint32{id}
		m.uris = append(m.uris, d.URI)
	}
	e.mounts[key] = m
	e.mu.Unlock()
	if e.opts.scrub.Interval > 0 {
		st.StartScrub(e.opts.scrub)
	}
	return append([]string(nil), m.uris...), nil
}

// DetachStore unmounts the store attached under dir (the first
// directory given to AttachStore). Its documents leave the registry
// immediately — queries started afterwards cannot see them — and the
// store's mappings are released only after every in-flight query has
// finished, so running queries are never pulled off their pages.
// Results that reference a detached store's documents must be
// serialized before detaching. Returns the URIs that were unmounted.
func (e *Engine) DetachStore(dir string) ([]string, error) {
	key := storeKey(dir)
	e.mu.Lock()
	m, ok := e.mounts[key]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("exrquy: no store attached at %s", key)
	}
	delete(e.mounts, key)
	for _, uri := range m.uris {
		delete(e.docs, uri)
	}
	e.mu.Unlock()

	// Wait out queries that snapshotted the registry before the removal:
	// every execution holds mountsMu shared for its whole run, so taking
	// it exclusively once drains them all.
	e.mountsMu.Lock()
	e.mountsMu.Unlock() //nolint:staticcheck // empty critical section is the drain barrier
	m.st.Close()
	return append([]string(nil), m.uris...), nil
}

// Stores lists the attached stores in mount-key order.
func (e *Engine) Stores() []StoreMountInfo {
	mounts := e.mountsSnapshot()
	out := make([]StoreMountInfo, 0, len(mounts))
	for _, m := range mounts {
		out = append(out, StoreMountInfo{
			Key: m.key, Dirs: append([]string(nil), m.dirs...),
			URIs: append([]string(nil), m.uris...), Stats: m.st.Stats(),
		})
	}
	return out
}

// SampleStores refreshes page-residency accounting across all attached
// stores (see store.Store.Sample) and returns the aggregate mapped and
// resident bytes. Serving layers call it periodically; it is also how
// ledger pressure translates into store page eviction.
func (e *Engine) SampleStores() (mapped, resident int64) {
	for _, m := range e.mountsSnapshot() {
		mm, rr := m.st.Sample()
		mapped += mm
		resident += rr
	}
	return mapped, resident
}

// WriteStore persists the named loaded document to dirs as an on-disk
// store: one directory writes a single-part store, N directories shard
// the document by equal preorder ranges (one part per directory).
func (e *Engine) WriteStore(name string, dirs ...string) error {
	return e.WriteStoreReplicated(name, 1, dirs...)
}

// WriteStoreReplicated is WriteStore with replication: every part is
// written to replicas distinct directories (replica r of part k lands
// in dirs[(k+r) mod len(dirs)], so two copies of one part never share a
// directory). A mount prefers the first healthy copy of each part and
// fails over to the next on corruption; requires replicas <= len(dirs).
func (e *Engine) WriteStoreReplicated(name string, replicas int, dirs ...string) error {
	e.mu.RLock()
	ids, ok := e.docs[name]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("exrquy: unknown document %q", name)
	}
	if len(ids) != 1 {
		return fmt.Errorf("exrquy: %q is a multi-part collection; write its parts individually", name)
	}
	return store.WriteDocOpts(dirs, name, e.store.Frag(ids[0]), store.WriteOptions{Replicas: replicas})
}

// mountsSnapshot copies the mount list under the registry lock, in
// deterministic (key) order.
func (e *Engine) mountsSnapshot() []*storeMount {
	e.mu.RLock()
	mounts := make([]*storeMount, 0, len(e.mounts))
	for _, m := range e.mounts {
		mounts = append(mounts, m)
	}
	e.mu.RUnlock()
	sort.Slice(mounts, func(i, j int) bool { return mounts[i].key < mounts[j].key })
	return mounts
}

// storeProbe is the per-execution storage health probe factory
// (core.Config.StoreProbe): invoked once per execution, it snapshots
// the attached stores and returns the closure every cooperative poll
// point of that execution calls. The closure's first call gives an
// armed fault plan its one chance to inject a fault into this
// execution; every call then checks each store's health (two atomic
// loads per store when all is well). Executions with no stores mounted
// probe nothing.
func (e *Engine) storeProbe() func() error {
	mounts := e.mountsSnapshot()
	if len(mounts) == 0 {
		return nil
	}
	stores := make([]*store.Store, len(mounts))
	for i, m := range mounts {
		stores[i] = m.st
	}
	var fired atomic.Bool
	return func() error {
		if f := store.ArmedFaults(); f != nil && !fired.Load() && fired.CompareAndSwap(false, true) {
			if err := f.QueryFault(stores); err != nil {
				return err
			}
		}
		for _, st := range stores {
			if err := st.Health(); err != nil {
				return err
			}
		}
		return nil
	}
}

// failoverStores swaps every suspect part of every attached store to a
// healthy standby replica and re-registers the reassembled documents.
// It runs under the exclusive mount lock — the same drain barrier
// DetachStore uses — so no in-flight execution is reading the registry
// while documents heal; the replaced mappings themselves are condemned
// (kept mapped until the store closes), so results already holding
// pages of the old copy stay readable. Returns whether any part healed,
// i.e. whether re-executing is worthwhile.
func (e *Engine) failoverStores() bool {
	e.mountsMu.Lock()
	defer e.mountsMu.Unlock()
	healed := false
	for _, m := range e.mountsSnapshot() {
		entries, err := m.st.FailoverSuspects()
		if err != nil || len(entries) == 0 {
			continue
		}
		healed = true
		e.registerHealed(entries)
	}
	return healed
}

// registerHealed re-registers documents whose parts were failed over or
// re-replicated (store.Options.OnHeal): the fresh fragments replace the
// registry entries, so the next execution's snapshot reads the healthy
// replicas. Safe concurrently with running queries — they hold their
// own point-in-time snapshot, and the pages that snapshot aliases stay
// mapped (condemned) until the store closes.
func (e *Engine) registerHealed(entries []store.DocEntry) {
	e.mu.Lock()
	for _, d := range entries {
		id := e.store.Add(d.Frag)
		e.docs[d.URI] = []uint32{id}
	}
	e.mu.Unlock()
}

// ScrubStores runs one synchronous scrub pass over every attached store
// — re-verifying every part file's section checksums (active mappings
// and standby replicas), quarantining corrupt files and restoring them
// from healthy copies — and returns each mount's cumulative scrub
// stats, keyed like Stores(). Independent of the WithStoreScrub
// background loop. bytesPerSec > 0 paces the verification reads.
func (e *Engine) ScrubStores(bytesPerSec int64) map[string]StoreScrubStats {
	out := make(map[string]StoreScrubStats)
	for _, m := range e.mountsSnapshot() {
		out[m.key] = m.st.ScrubNow(store.ScrubConfig{BytesPerSec: bytesPerSec})
	}
	return out
}
