package exrquy

// Out-of-core document stores: mount persisted columnar stores
// (internal/store) into an Engine so fn:doc serves documents straight
// from mmap'd part files, demand-paged under a byte ledger (the
// dedicated WithStoreBudget ledger, or the governor's shared one),
// instead of parsing XML into the heap.

import (
	"fmt"
	"path/filepath"

	"repro/internal/store"
)

// storeMount is one attached on-disk store and the doc URIs it
// contributed to the registry.
type storeMount struct {
	key  string
	dirs []string
	uris []string
	st   *store.Store
}

// StoreMountInfo describes one attached store for observability.
type StoreMountInfo struct {
	Key   string              `json:"key"`
	Dirs  []string            `json:"dirs"`
	URIs  []string            `json:"uris"`
	Stats store.StatsSnapshot `json:"stats"`
}

// storeKey canonicalizes the mount key: the first directory's absolute
// path (best effort — a non-resolvable path keys as given).
func storeKey(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		return abs
	}
	return dir
}

// AttachStore mounts the on-disk stores in dirs (a document sharded
// across several directories is reassembled when the dirs jointly cover
// its parts) and registers every document they hold, replacing any
// same-named registry entries. The mount is keyed by the first
// directory; it returns the mounted document URIs.
//
// The store's sampled residency is charged to a byte ledger: the
// dedicated store ledger when the engine was built WithStoreBudget,
// else the governor's shared ledger when one is configured (corpus
// pages then compete with query intermediates). Under pressure the
// store evicts pages rather than failing queries.
func (e *Engine) AttachStore(dirs ...string) ([]string, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("exrquy: AttachStore needs at least one directory")
	}
	key := storeKey(dirs[0])
	e.mu.Lock()
	_, dup := e.mounts[key]
	e.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("exrquy: store %s already attached", key)
	}
	led := e.storeLedger
	if led == nil && e.opts.governor != nil {
		led = e.opts.governor.Ledger()
	}
	st, err := store.Open(dirs, store.Options{Ledger: led})
	if err != nil {
		return nil, err
	}
	m := &storeMount{key: key, dirs: append([]string(nil), dirs...), st: st}
	e.mu.Lock()
	if _, dup := e.mounts[key]; dup {
		e.mu.Unlock()
		st.Close()
		return nil, fmt.Errorf("exrquy: store %s already attached", key)
	}
	for _, d := range st.Docs() {
		id := e.store.Add(d.Frag)
		e.docs[d.URI] = []uint32{id}
		m.uris = append(m.uris, d.URI)
	}
	e.mounts[key] = m
	e.mu.Unlock()
	return append([]string(nil), m.uris...), nil
}

// DetachStore unmounts the store attached under dir (the first
// directory given to AttachStore). Its documents leave the registry
// immediately — queries started afterwards cannot see them — and the
// store's mappings are released only after every in-flight query has
// finished, so running queries are never pulled off their pages.
// Results that reference a detached store's documents must be
// serialized before detaching. Returns the URIs that were unmounted.
func (e *Engine) DetachStore(dir string) ([]string, error) {
	key := storeKey(dir)
	e.mu.Lock()
	m, ok := e.mounts[key]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("exrquy: no store attached at %s", key)
	}
	delete(e.mounts, key)
	for _, uri := range m.uris {
		delete(e.docs, uri)
	}
	e.mu.Unlock()

	// Wait out queries that snapshotted the registry before the removal:
	// every execution holds mountsMu shared for its whole run, so taking
	// it exclusively once drains them all.
	e.mountsMu.Lock()
	e.mountsMu.Unlock() //nolint:staticcheck // empty critical section is the drain barrier
	m.st.Close()
	return append([]string(nil), m.uris...), nil
}

// Stores lists the attached stores in unspecified order.
func (e *Engine) Stores() []StoreMountInfo {
	e.mu.RLock()
	mounts := make([]*storeMount, 0, len(e.mounts))
	for _, m := range e.mounts {
		mounts = append(mounts, m)
	}
	e.mu.RUnlock()
	out := make([]StoreMountInfo, 0, len(mounts))
	for _, m := range mounts {
		out = append(out, StoreMountInfo{
			Key: m.key, Dirs: append([]string(nil), m.dirs...),
			URIs: append([]string(nil), m.uris...), Stats: m.st.Stats(),
		})
	}
	return out
}

// SampleStores refreshes page-residency accounting across all attached
// stores (see store.Store.Sample) and returns the aggregate mapped and
// resident bytes. Serving layers call it periodically; it is also how
// ledger pressure translates into store page eviction.
func (e *Engine) SampleStores() (mapped, resident int64) {
	e.mu.RLock()
	mounts := make([]*storeMount, 0, len(e.mounts))
	for _, m := range e.mounts {
		mounts = append(mounts, m)
	}
	e.mu.RUnlock()
	for _, m := range mounts {
		mm, rr := m.st.Sample()
		mapped += mm
		resident += rr
	}
	return mapped, resident
}

// WriteStore persists the named loaded document to dirs as an on-disk
// store: one directory writes a single-part store, N directories shard
// the document by equal preorder ranges (one part per directory).
func (e *Engine) WriteStore(name string, dirs ...string) error {
	e.mu.RLock()
	ids, ok := e.docs[name]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("exrquy: unknown document %q", name)
	}
	if len(ids) != 1 {
		return fmt.Errorf("exrquy: %q is a multi-part collection; write its parts individually", name)
	}
	return store.WriteDoc(dirs, name, e.store.Frag(ids[0]))
}
