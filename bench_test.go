package exrquy

// Benchmarks reproducing the paper's evaluation (§5), one group per table
// or figure. The full parameter sweeps (several document sizes, cutoff
// handling, printed rows in the paper's format) live in cmd/xmarkbench;
// these testing.B benchmarks fix one document size so that
// `go test -bench=. -benchmem` gives a complete, quick pass over every
// experiment.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/xdm"
	"repro/internal/xmarkq"
	"repro/internal/xquery"
)

// benchFactor keeps the default `go test -bench` run in tens of seconds;
// cmd/xmarkbench sweeps real sizes.
const benchFactor = 0.01

var (
	envOnce sync.Once
	benvv   *bench.Env
)

func benv() *bench.Env {
	envOnce.Do(func() { benvv = bench.NewEnv(benchFactor) })
	return benvv
}

func baselineCfg() core.Config { return core.BaselineConfig() }

func unorderedCfg() core.Config {
	u := xquery.Unordered
	cfg := core.DefaultConfig()
	cfg.ForceOrdering = &u
	return cfg
}

func runPrepared(b *testing.B, query string, cfg core.Config) {
	b.Helper()
	env := benv()
	p, err := core.Prepare(query, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Allocation-heavy neighbours would otherwise skew each other through
	// garbage-collection carry-over.
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(env.Store, env.Docs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12: ordered vs unordered for every XMark query ---

// BenchmarkFigure12 measures each XMark query under the order-ignorant
// baseline (ordered) and the order-indifference configuration (unordered);
// the ratio of the two times per query is the speedup series of Figure 12.
func BenchmarkFigure12(b *testing.B) {
	for _, q := range xmarkq.All() {
		b.Run(fmt.Sprintf("%s/ordered", q.Name), func(b *testing.B) {
			runPrepared(b, q.Text, baselineCfg())
		})
		b.Run(fmt.Sprintf("%s/unordered", q.Name), func(b *testing.B) {
			runPrepared(b, q.Text, unorderedCfg())
		})
	}
}

// --- Table 2: Q11 profile and the fn:count saving ---

// BenchmarkTable2Q11 measures Q11 under the baseline compiler and with
// order indifference enabled in ordered mode — the configuration of the
// paper's Table 2 discussion, where Rule FN:COUNT removes the iter→seq
// reordering of the join result without any unordered declaration.
func BenchmarkTable2Q11(b *testing.B) {
	q11 := xmarkq.Get(11).Text
	b.Run("baseline", func(b *testing.B) { runPrepared(b, q11, baselineCfg()) })
	b.Run("indifference-ordered", func(b *testing.B) {
		runPrepared(b, q11, core.DefaultConfig())
	})
	b.Run("indifference-unordered", func(b *testing.B) {
		runPrepared(b, q11, unorderedCfg())
	})
}

// --- Figure 10 / Section 1: '|' versus ',' ---

// BenchmarkFigure10UnionVsConcat evaluates the paper's opening example:
// $t//(c|d) with strict document order versus unordered { $t//(c|d) },
// whose plan has decayed to a pure concatenation of the two steps.
func BenchmarkFigure10UnionVsConcat(b *testing.B) {
	query := `doc("auction.xml")//(bidder|seller)`
	b.Run("ordered-union", func(b *testing.B) {
		runPrepared(b, query, baselineCfg())
	})
	b.Run("unordered-concat", func(b *testing.B) {
		runPrepared(b, "unordered { "+query+" }", core.DefaultConfig())
	})
}

// --- Figure 6/9/§7: the Q6 plan at its three optimization stages ---

// BenchmarkFigure6Q6 runs Q6 with the plan of Figure 6(a) (5 ρ), with the
// Figure 9 plan (analysis, 1 ρ), and with the §7 plan (relaxation, 0 ρ).
func BenchmarkFigure6Q6(b *testing.B) {
	q6 := xmarkq.Get(6).Text
	u := xquery.Unordered
	b.Run("ordered-5-sorts", func(b *testing.B) { runPrepared(b, q6, baselineCfg()) })
	b.Run("unordered-unoptimized", func(b *testing.B) {
		runPrepared(b, q6, core.Config{Indifference: true, ForceOrdering: &u})
	})
	b.Run("analysis-1-sort", func(b *testing.B) {
		cfg := core.Config{Indifference: true, ForceOrdering: &u}
		cfg.Opt.ColumnAnalysis = true
		runPrepared(b, q6, cfg)
	})
	b.Run("relaxation-0-sorts", func(b *testing.B) {
		cfg := core.Config{Indifference: true, ForceOrdering: &u}
		cfg.Opt.ColumnAnalysis = true
		cfg.Opt.RownumRelax = true
		runPrepared(b, q6, cfg)
	})
	b.Run("all-rewrites", func(b *testing.B) { runPrepared(b, q6, unorderedCfg()) })
}

// --- Ablation: contribution of each optimizer rewrite ---

// BenchmarkAblation times representative queries with individual rewrites
// toggled (the DESIGN.md ablation index).
func BenchmarkAblation(b *testing.B) {
	u := xquery.Unordered
	configs := []struct {
		name string
		cfg  func() core.Config
	}{
		{"none", func() core.Config { return core.Config{Indifference: true, ForceOrdering: &u} }},
		{"analysis", func() core.Config {
			c := core.Config{Indifference: true, ForceOrdering: &u}
			c.Opt.ColumnAnalysis = true
			return c
		}},
		{"analysis+merge", func() core.Config {
			c := core.Config{Indifference: true, ForceOrdering: &u}
			c.Opt.ColumnAnalysis = true
			c.Opt.StepMerge = true
			return c
		}},
		{"all", unorderedCfg},
	}
	for _, id := range []int{6, 11, 19} {
		q := xmarkq.Get(id)
		for _, cc := range configs {
			b.Run(fmt.Sprintf("%s/%s", q.Name, cc.name), func(b *testing.B) {
				runPrepared(b, q.Text, cc.cfg())
			})
		}
	}
}

// --- Compilation cost ---

// BenchmarkCompile measures parse+normalize+compile+optimize time for the
// largest XMark plans (compilation is excluded from all other benchmarks).
func BenchmarkCompile(b *testing.B) {
	for _, id := range []int{6, 10, 11} {
		q := xmarkq.Get(id)
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Prepare(q.Text, unorderedCfg()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Parallel execution (beyond the paper) ---

// BenchmarkParallel measures the morsel-wise parallel executor against
// the serial engine on order-indifferent queries — the count shapes of
// Q6/Q7/Q20 whose plans are one big order-dead descendant scan, exactly
// the regions the parallel region analysis marks. cmd/xmarkbench
// -parallel runs the same comparison at larger document sizes, where the
// speedup grows with the scan.
func BenchmarkParallel(b *testing.B) {
	parallelCfg := func() core.Config {
		cfg := unorderedCfg()
		cfg.Parallelism = runtime.GOMAXPROCS(0)
		return cfg
	}
	queries := []struct{ name, text string }{
		{"Q6", xmarkq.Get(6).Text},
		{"Q7", xmarkq.Get(7).Text},
		{"Q20", xmarkq.Get(20).Text},
		{"keyword-count", `count(doc("auction.xml")//keyword)`},
	}
	for _, q := range queries {
		b.Run(q.name+"/serial", func(b *testing.B) {
			runPrepared(b, q.text, unorderedCfg())
		})
		b.Run(q.name+"/parallel", func(b *testing.B) {
			runPrepared(b, q.text, parallelCfg())
		})
	}
}

// --- Benchmark trajectory (BENCH_PR3.json) ---

// BenchmarkXMark is the benchmark-trajectory anchor: representative XMark
// queries under the unordered configuration, serial and parallel, with the
// typed column layer on (default) and forced off (boxed — the pre-typed
// storage model). `go test -bench=XMark -benchtime=1x` is the CI smoke
// run; cmd/xmarkbench -json writes the same measurements to a file.
func BenchmarkXMark(b *testing.B) {
	parallelCfg := func() core.Config {
		cfg := unorderedCfg()
		cfg.Parallelism = runtime.GOMAXPROCS(0)
		return cfg
	}
	for _, id := range []int{1, 8, 9, 11} {
		q := xmarkq.Get(id)
		b.Run(q.Name+"/serial", func(b *testing.B) {
			runPrepared(b, q.Text, unorderedCfg())
		})
		b.Run(q.Name+"/parallel", func(b *testing.B) {
			runPrepared(b, q.Text, parallelCfg())
		})
		b.Run(q.Name+"/serial-boxed", func(b *testing.B) {
			xdm.ForceBoxed = true
			defer func() { xdm.ForceBoxed = false }()
			runPrepared(b, q.Text, unorderedCfg())
		})
	}
}

// --- Substrate microbenchmarks ---

// BenchmarkStaircaseJoin isolates the step operator: a descendant step
// from the document root (the whole-document scan the staircase join
// performs once per iteration group).
func BenchmarkStaircaseJoin(b *testing.B) {
	runPrepared(b, `count(doc("auction.xml")//keyword)`, unorderedCfg())
}

// BenchmarkRowNumVsRowID isolates the ρ/# cost asymmetry the whole paper
// rests on: establishing document order after a large step (ρ = sort)
// versus stamping arbitrary order (#).
func BenchmarkRowNumVsRowID(b *testing.B) {
	// The ordered plan sorts the full step result per iteration; the
	// unordered plan stamps it. fn:data keeps the result sequence (and
	// hence pos) alive so the ρ cannot simply be pruned.
	query := `for $k in doc("auction.xml")//keyword/text() return $k`
	b.Run("rownum", func(b *testing.B) { runPrepared(b, query, baselineCfg()) })
	b.Run("rowid", func(b *testing.B) { runPrepared(b, query, unorderedCfg()) })
}
