package exrquy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/xdm"
)

func newTestEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	eng := New(opts...)
	if err := eng.LoadDocumentString("t.xml", `<a><b><c/><d/></b><c/></a>`); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestQuickstart(t *testing.T) {
	eng := newTestEngine(t)
	res, err := eng.Query(`doc("t.xml")/a//(c|d)`)
	if err != nil {
		t.Fatal(err)
	}
	xml, err := res.XML()
	if err != nil {
		t.Fatal(err)
	}
	if xml != "<c/><d/><c/>" {
		t.Errorf("result: %q", xml)
	}
	if res.Len() != 3 {
		t.Errorf("len: %d", res.Len())
	}
}

func TestUnorderedPermutation(t *testing.T) {
	eng := newTestEngine(t)
	res, err := eng.Query(`unordered { doc("t.xml")/a//(c|d) }`)
	if err != nil {
		t.Fatal(err)
	}
	items, err := res.Items()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(items)
	if strings.Join(items, "") != "<c/><c/><d/>" {
		t.Errorf("multiset: %v", items)
	}
}

func TestPlanStatsReflectConfiguration(t *testing.T) {
	q, err := newTestEngine(t).Compile(`doc("t.xml")/a//(c|d)`)
	if err != nil {
		t.Fatal(err)
	}
	_, after := q.PlanStats()
	if after.Operators == 0 {
		t.Error("empty stats")
	}
	// Baseline engine: no # anywhere, no optimization.
	qb, err := newTestEngine(t, WithOrderIndifference(false)).Compile(`unordered { doc("t.xml")/a//(c|d) }`)
	if err != nil {
		t.Fatal(err)
	}
	before, afterB := qb.PlanStats()
	if afterB.Stamps != 0 || before != afterB {
		t.Errorf("baseline stats: %+v -> %+v", before, afterB)
	}
	// Unordered engine: the union plan loses all sorts.
	qu, err := newTestEngine(t, WithOrdering(Unordered)).Compile(`doc("t.xml")/a//(c|d)`)
	if err != nil {
		t.Fatal(err)
	}
	_, afterU := qu.PlanStats()
	if afterU.Sorts != 0 {
		t.Errorf("unordered union plan keeps %d sorts", afterU.Sorts)
	}
}

func TestReferenceAgreement(t *testing.T) {
	eng := newTestEngine(t)
	for _, q := range []string{
		`count(doc("t.xml")/a//(c|d))`,
		`for $x in doc("t.xml")/a/b/* return name($x)`,
		`(let $b := doc("t.xml")/a//b, $d := doc("t.xml")/a//d,
		  $e := <e>{ $d, $b }</e> return ($b << $d, $e/b << $e/d))`,
	} {
		got, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := eng.Reference(q)
		if err != nil {
			t.Fatalf("%s (ref): %v", q, err)
		}
		g, _ := got.XML()
		w, _ := want.XML()
		if g != w {
			t.Errorf("%s: pipeline %q vs reference %q", q, g, w)
		}
	}
}

func TestExplainShowsOperators(t *testing.T) {
	q, err := newTestEngine(t).Compile(`count(doc("t.xml")//c)`)
	if err != nil {
		t.Fatal(err)
	}
	plan := q.Explain()
	if !strings.Contains(plan, "aggr") || !strings.Contains(plan, "step") {
		t.Errorf("explain output:\n%s", plan)
	}
}

func TestProfileAvailable(t *testing.T) {
	eng := newTestEngine(t)
	res, err := eng.Query(`count(doc("t.xml")//c)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile()) == 0 || res.Elapsed() <= 0 {
		t.Error("profile/elapsed missing")
	}
	// Reference results carry no profile.
	ref, _ := eng.Reference(`1`)
	if len(ref.Profile()) != 0 {
		t.Error("reference result should have no profile")
	}
}

func TestLoadXMarkAndDocumentStats(t *testing.T) {
	eng := New()
	eng.LoadXMark("auction.xml", 0.001)
	st, err := eng.DocumentStats("auction.xml")
	if err != nil || st.Nodes == 0 {
		t.Fatalf("stats: %+v, %v", st, err)
	}
	if _, err := eng.DocumentStats("nope.xml"); err == nil {
		t.Error("expected unknown-document error")
	}
	res, err := eng.Query(`count(doc("auction.xml")/site/people/person)`)
	if err != nil {
		t.Fatal(err)
	}
	if xml, _ := res.XML(); xml == "0" {
		t.Error("no persons generated")
	}
	if len(eng.Documents()) != 1 {
		t.Error("document registry")
	}
}

func TestTimeoutOption(t *testing.T) {
	eng := New(WithTimeout(time.Nanosecond))
	eng.LoadXMark("auction.xml", 0.005)
	_, err := eng.Query(`for $p in doc("auction.xml")/site/people/person
		return count(doc("auction.xml")//keyword)`)
	if err == nil || !strings.Contains(err.Error(), "cutoff") {
		t.Errorf("expected cutoff, got %v", err)
	}
}

func TestErrorsSurface(t *testing.T) {
	eng := newTestEngine(t)
	if _, err := eng.Query(`$nope`); err == nil {
		t.Error("compile error not surfaced")
	}
	if _, err := eng.Query(`doc("missing.xml")`); err == nil {
		t.Error("runtime error not surfaced")
	}
	if _, err := eng.Compile(`for $x in`); err == nil {
		t.Error("parse error not surfaced")
	}
	if err := eng.LoadDocumentString("bad.xml", `<a><b></a>`); err == nil {
		t.Error("document parse error not surfaced")
	}
}

func TestOptimizationToggles(t *testing.T) {
	eng := newTestEngine(t,
		WithOrdering(Unordered),
		WithOptimizations(Optimizations{ColumnAnalysis: true}))
	q, err := eng.Compile(`for $b in doc("t.xml")/a//b return count($b//c)`)
	if err != nil {
		t.Fatal(err)
	}
	before, after := q.PlanStats()
	if after.Operators >= before.Operators {
		t.Errorf("analysis did not shrink plan: %d -> %d", before.Operators, after.Operators)
	}
	res, err := q.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if xml, _ := res.XML(); xml != "1" {
		t.Errorf("result: %q", xml)
	}
}

func TestExternalVariables(t *testing.T) {
	eng := newTestEngine(t)
	res, err := eng.QueryWith(`declare variable $n external;
		declare variable $tag external;
		for $x in 1 to $n return concat($tag, string($x))`,
		map[string]any{"n": 3, "tag": "v"})
	if err != nil {
		t.Fatal(err)
	}
	if xml, _ := res.XML(); xml != "v1 v2 v3" {
		t.Errorf("result: %q", xml)
	}
	// Sequences bind too.
	res, err = eng.QueryWith(`declare variable $xs external; sum($xs)`,
		map[string]any{"xs": []any{1, 2, 3.5}})
	if err != nil {
		t.Fatal(err)
	}
	if xml, _ := res.XML(); xml != "6.5" {
		t.Errorf("sum: %q", xml)
	}
	// Missing binding is a compile error.
	if _, err := eng.Query(`declare variable $missing external; $missing`); err == nil {
		t.Error("unbound external variable must fail")
	}
	// Initialized prolog variables need no binding.
	res, err = eng.Query(`declare variable $k := 6 * 7; $k`)
	if err != nil {
		t.Fatal(err)
	}
	if xml, _ := res.XML(); xml != "42" {
		t.Errorf("initialized variable: %q", xml)
	}
	// Unsupported Go types are rejected.
	if _, err := eng.QueryWith(`declare variable $x external; $x`,
		map[string]any{"x": struct{}{}}); err == nil {
		t.Error("unsupported binding type must fail")
	}
	// A []xdm.Item binding is adopted without copying (and a single Item
	// binds as a one-item sequence).
	res, err = eng.QueryWith(`declare variable $xs external; sum($xs)`,
		map[string]any{"xs": []xdm.Item{xdm.NewInt(10), xdm.NewInt(32)}})
	if err != nil {
		t.Fatal(err)
	}
	if xml, _ := res.XML(); xml != "42" {
		t.Errorf("item-slice binding: %q", xml)
	}
	res, err = eng.QueryWith(`declare variable $x external; $x + 1`,
		map[string]any{"x": xdm.NewInt(41)})
	if err != nil {
		t.Fatal(err)
	}
	if xml, _ := res.XML(); xml != "42" {
		t.Errorf("single-item binding: %q", xml)
	}
}

func TestDocumentsSorted(t *testing.T) {
	eng := New()
	for _, name := range []string{"z.xml", "a.xml", "m.xml", "b.xml"} {
		if err := eng.LoadDocumentString(name, `<x/>`); err != nil {
			t.Fatal(err)
		}
	}
	got := eng.Documents()
	want := []string{"a.xml", "b.xml", "m.xml", "z.xml"}
	if len(got) != len(want) {
		t.Fatalf("documents: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("documents not sorted: %v", got)
		}
	}
}

func TestExternalVariableTypes(t *testing.T) {
	eng := newTestEngine(t)
	cases := []struct {
		name  string
		query string
		vars  map[string]any
		want  string
	}{
		{"int32", `declare variable $x external; $x + 1`,
			map[string]any{"x": int32(41)}, "42"},
		{"float32", `declare variable $x external; $x * 2`,
			map[string]any{"x": float32(1.5)}, "3"},
		{"string-slice", `declare variable $xs external; string-join($xs, "-")`,
			map[string]any{"xs": []string{"a", "b", "c"}}, "a-b-c"},
		{"int-slice", `declare variable $xs external; sum($xs)`,
			map[string]any{"xs": []int{1, 2, 3}}, "6"},
		{"empty-string-slice", `declare variable $xs external; count($xs)`,
			map[string]any{"xs": []string{}}, "0"},
		{"empty-int-slice", `declare variable $xs external; count($xs)`,
			map[string]any{"xs": []int{}}, "0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := eng.QueryWith(tc.query, tc.vars)
			if err != nil {
				t.Fatal(err)
			}
			if xml, _ := res.XML(); xml != tc.want {
				t.Errorf("result: %q, want %q", xml, tc.want)
			}
		})
	}
}

func TestWithParallelism(t *testing.T) {
	serial := New()
	par := New(WithParallelism(4))
	serial.LoadXMark("auction.xml", 0.01)
	par.LoadXMark("auction.xml", 0.01)
	queries := []string{
		`count(doc("auction.xml")//keyword)`,
		`unordered { for $i in doc("auction.xml")//item
			where contains(string(exactly-one($i/description)), "gold")
			return $i/name/text() }`,
		`doc("auction.xml")/site/people/person/name`,
	}
	for _, q := range queries {
		sres, err := serial.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := par.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		sx, _ := sres.XML()
		px, _ := pres.XML()
		if sx != px {
			t.Errorf("parallel result differs for %q:\n got %.200q\nwant %.200q", q, px, sx)
		}
	}
	// The profile still attributes work per origin under parallel execution.
	pres, err := par.Query(`count(doc("auction.xml")//keyword)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Profile()) == 0 {
		t.Error("no profile entries from parallel execution")
	}
}

// TestConcurrentQueries exercises concurrent use of one Engine from many
// goroutines — mixed Query and compile-once/Execute-many, serial and
// parallel mode — against shared documents. Run under -race in CI.
func TestConcurrentQueries(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"serial", nil},
		{"parallel", []Option{WithParallelism(4)}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			eng := New(mode.opts...)
			if err := eng.LoadDocumentString("t.xml", `<a><b><c/><d/></b><c/></a>`); err != nil {
				t.Fatal(err)
			}
			eng.LoadXMark("auction.xml", 0.002)
			shared, err := eng.Compile(`count(doc("auction.xml")//keyword)`)
			if err != nil {
				t.Fatal(err)
			}
			want, err := shared.Execute()
			if err != nil {
				t.Fatal(err)
			}
			wantXML, _ := want.XML()

			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 4; i++ {
						if g%2 == 0 {
							res, err := shared.Execute()
							if err != nil {
								errs <- err
								return
							}
							if xml, _ := res.XML(); xml != wantXML {
								errs <- fmt.Errorf("shared query: got %q, want %q", xml, wantXML)
								return
							}
						} else {
							res, err := eng.Query(`doc("t.xml")/a//(c|d)`)
							if err != nil {
								errs <- err
								return
							}
							if xml, _ := res.XML(); xml != "<c/><d/><c/>" {
								errs <- fmt.Errorf("per-goroutine query: %q", xml)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
