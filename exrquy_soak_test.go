package exrquy

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/xmarkq"
)

// TestScrubSoak is the storage-chaos soak the nightly lane runs under
// the race detector: a governed engine serves all 20 XMark queries in a
// loop from a replicated store while a fault plan corrupts one replica
// per query and the background scrubber re-verifies checksums every few
// milliseconds. The run must end clean — every result byte-identical to
// the in-memory engine, the governor's ledger drained back to zero, and
// no goroutine leaked across detach.
func TestScrubSoak(t *testing.T) {
	const (
		factor = 0.002
		rounds = 3
	)
	defer SetStoreFaults(nil)
	SetStoreFaults(nil)
	baseline := runtime.NumGoroutine()

	ref := New()
	ref.LoadXMark("auction.xml", factor)
	want := make(map[int]string)
	for _, q := range xmarkq.All() {
		res, err := ref.Query(q.Text)
		if err != nil {
			t.Fatalf("in-memory %s: %v", q.Name, err)
		}
		xml, err := res.XML()
		if err != nil {
			t.Fatal(err)
		}
		want[q.ID] = xml
	}

	dirs := writeReplicated(t, factor, 3, 2)
	gov := NewGovernor(GovernorConfig{MaxBytes: 256 << 20})
	eng := New(WithGovernor(gov), WithStoreScrub(StoreScrubConfig{Interval: 2 * time.Millisecond}))
	if _, err := eng.AttachStore(dirs...); err != nil {
		t.Fatalf("attach: %v", err)
	}

	// The retry-parity plan (see TestStoreFailoverXMark): every top-level
	// query execution faults exactly once, every failover retry is clean.
	SetStoreFaults(&StoreFaultPlan{Seed: 0, EIOEvery: 4, BadCRCEvery: 2})
	for round := 0; round < rounds; round++ {
		for _, q := range xmarkq.All() {
			res, err := eng.Query(q.Text)
			if err != nil {
				t.Fatalf("round %d %s under faults: %v", round, q.Name, err)
			}
			got, err := res.XML()
			if err != nil {
				t.Fatal(err)
			}
			if got != want[q.ID] {
				t.Fatalf("round %d %s: soak run differs from in-memory engine", round, q.Name)
			}
		}
	}
	SetStoreFaults(nil)

	// The scrubber must have completed passes while the queries ran (its
	// interval is a few ms; the soak above takes far longer), and one
	// final synchronous pass over the repaired store must find nothing.
	for key, st := range eng.ScrubStores(0) {
		if st.Passes < 1 || st.PartsVerified < 1 {
			t.Errorf("scrubber idle on %s: %+v", key, st)
		}
		if st.Quarantined != st.Rereplicated {
			t.Errorf("%s: %d quarantined but %d re-replicated", key, st.Quarantined, st.Rereplicated)
		}
	}

	if got := gov.Stats().BytesInUse; got != 0 {
		t.Errorf("governor ledger did not drain: %d bytes still reserved", got)
	}
	if _, err := eng.DetachStore(dirs[0]); err != nil {
		t.Fatalf("detach: %v", err)
	}

	// Detach stops the scrubber and unmaps the store once queries drain:
	// the goroutine count must settle back to the baseline.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}
