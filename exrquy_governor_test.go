package exrquy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentLoadAndQuery exercises the documented concurrency
// contract: documents may be loaded (and the registry listed) while
// compiled queries execute on other goroutines, and a shared *Query is
// reusable concurrently. Run under -race this is the registry-locking
// regression test.
func TestConcurrentLoadAndQuery(t *testing.T) {
	eng := New()
	if err := eng.LoadDocumentString("t.xml", "<a><b>1</b><b>2</b><b>3</b></a>"); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Compile(`count(doc("t.xml")/a/b)`)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		loaders = 2
		rounds  = 50
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				res, err := q.Execute()
				if err != nil {
					t.Errorf("execute: %v", err)
					return
				}
				if xml, _ := res.XML(); xml != "3" {
					t.Errorf("result = %q, want 3", xml)
					return
				}
			}
		}()
	}
	for l := 0; l < loaders; l++ {
		l := l
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("extra-%d-%d.xml", l, i)
				if err := eng.LoadDocumentString(name, "<x/>"); err != nil {
					t.Errorf("load %s: %v", name, err)
					return
				}
				_ = eng.Documents()
				if _, err := eng.DocumentStats(name); err != nil {
					t.Errorf("stats %s: %v", name, err)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := len(eng.Documents()); got != 1+loaders*rounds {
		t.Errorf("registry has %d documents, want %d", got, 1+loaders*rounds)
	}
}

func TestGovernorEndToEnd(t *testing.T) {
	gov := NewGovernor(GovernorConfig{MaxConcurrent: 2, MaxBytes: 64 << 20})
	eng := New(WithGovernor(gov))
	if err := eng.LoadDocumentString("t.xml", "<a><b>1</b><b>2</b></a>"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`for $b in doc("t.xml")/a/b return $b/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Error("idle single query reported degraded")
	}
	if res.QueueWait() != 0 {
		t.Errorf("idle single query reported queue wait %v", res.QueueWait())
	}
	st := gov.Stats()
	if st.Admitted != 1 || st.Running != 0 {
		t.Errorf("governor stats = %+v, want 1 admitted, 0 running", st)
	}
	if used := gov.Ledger().Used(); used != 0 {
		t.Errorf("ledger used = %d after query, want 0", used)
	}
}

// TestGovernorMemoryExhaustion checks the ledger surfaces through the
// public taxonomy: a governor whose global budget cannot hold the
// query's intermediates fails that query with ErrMemoryLimit (naming
// the budget), not an OOM or a hang — and the failed query's
// reservation drains back out.
func TestGovernorMemoryExhaustion(t *testing.T) {
	gov := NewGovernor(GovernorConfig{MaxConcurrent: 2, MaxBytes: 2048})
	eng := New(WithGovernor(gov))
	b := "<a>"
	for i := 0; i < 200; i++ {
		b += fmt.Sprintf("<b>%d</b>", i)
	}
	b += "</a>"
	if err := eng.LoadDocumentString("t.xml", b); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Query(`for $x in doc("t.xml")/a/b, $y in doc("t.xml")/a/b return $x = $y`)
	if !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("got %v, want ErrMemoryLimit", err)
	}
	if IsRetryable(err) {
		t.Error("memory-limit error must not be retryable")
	}
	if used := gov.Ledger().Used(); used != 0 {
		t.Errorf("ledger used = %d after failed query, want 0", used)
	}
	// The governor and engine remain serviceable after the failure.
	if _, err := eng.Query(`1 + 1`); err != nil {
		t.Errorf("tiny query after exhaustion: %v", err)
	}
}

func TestOverloadTaxonomy(t *testing.T) {
	// ErrOverload is re-exported and retryable; a queue-deadline shed
	// surfaces through the public API with its hint.
	gov := NewGovernor(GovernorConfig{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 10 * time.Millisecond})
	eng := New(WithGovernor(gov))
	if err := eng.LoadDocumentString("t.xml", "<a/>"); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Compile(`doc("t.xml")/a`)
	if err != nil {
		t.Fatal(err)
	}

	// The public API has no lease handle to pin the slot with, so this is
	// a statistical check: saturate the one-slot governor and require the
	// taxonomy to hold for every outcome — successes plus well-formed,
	// retryable overloads, nothing else.
	var wg sync.WaitGroup
	var mu sync.Mutex
	kinds := map[string]int{}
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := q.ExecuteContext(context.Background())
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				kinds["ok"]++
			case errors.Is(err, ErrOverload):
				if !IsRetryable(err) {
					t.Error("overload not retryable")
				}
				if _, ok := RetryAfterOf(err); !ok {
					t.Error("overload without a retry hint")
				}
				kinds["overload"]++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if kinds["ok"] == 0 {
		t.Errorf("no query succeeded: %v", kinds)
	}
	if st := gov.Stats(); st.Running != 0 || st.Queued != 0 {
		t.Errorf("governor not idle: %+v", st)
	}
}
