#!/usr/bin/env bash
# End-to-end smoke test of the exrquyd daemon, used by the CI
# server-smoke job and runnable locally: boot on an ephemeral port with a
# single admission slot, upload a small XMark document, then assert the
# status codes of a normal query, an EXPLAIN ANALYZE query, a
# 429-inducing burst (Retry-After present), and a graceful SIGTERM drain.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/exrquyd" ./cmd/exrquyd
go build -o "$workdir/xmarkgen" ./cmd/xmarkgen

echo "== boot (1 admission slot, zero-depth queue request, 10ms wait bound)"
"$workdir/exrquyd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -gov-slots 1 -gov-queue 0 -gov-wait 10ms >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -s "$workdir/addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "FAIL: daemon exited during boot"; cat "$workdir/daemon.log"; exit 1; }
    sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "daemon never wrote addr file"; cat "$workdir/daemon.log"; exit 1; }
base="http://$(cat "$workdir/addr")"
echo "   $base"

# The addr file proves the listener is bound, not that the accept loop
# is serving; poll /healthz with a deadline so a wedged boot fails loud
# (with the daemon's own stderr) instead of racing the first request.
echo "== wait for /healthz"
healthy=""
for _ in $(seq 1 100); do
    if curl -sf --max-time 2 "$base/healthz" >/dev/null 2>&1; then
        healthy=1
        break
    fi
    kill -0 "$daemon_pid" 2>/dev/null || { echo "FAIL: daemon exited before becoming healthy"; cat "$workdir/daemon.log"; exit 1; }
    sleep 0.1
done
[ -n "$healthy" ] || { echo "FAIL: /healthz not answering within 10s"; cat "$workdir/daemon.log"; exit 1; }
echo "   ok: healthy"

assert_status() { # assert_status <want> <got> <label>
    if [ "$2" != "$1" ]; then
        echo "FAIL: $3: want status $1, got $2"
        cat "$workdir/daemon.log"
        exit 1
    fi
    echo "   ok: $3 -> $2"
}

echo "== upload a small XMark document"
"$workdir/xmarkgen" -factor 0.01 -o "$workdir/auction.xml"
status=$(curl -s -o "$workdir/put.out" -w '%{http_code}' -X PUT \
    --data-binary @"$workdir/auction.xml" "$base/documents/auction.xml")
assert_status 201 "$status" "PUT /documents/auction.xml"

echo "== query 1: plain count"
status=$(curl -s -o "$workdir/q1.out" -w '%{http_code}' \
    --data 'count(doc("auction.xml")//item)' "$base/query")
assert_status 200 "$status" "POST /query count(//item)"
grep -qE '^[0-9]+$' "$workdir/q1.out" || { echo "FAIL: count result not a number: $(cat "$workdir/q1.out")"; exit 1; }

echo "== query 2: EXPLAIN ANALYZE"
status=$(curl -s -o "$workdir/q2.out" -w '%{http_code}' -G \
    --data-urlencode 'q=for $i in doc("auction.xml")/site/regions//item return $i/name' \
    --data-urlencode 'analyze=1' "$base/query")
assert_status 200 "$status" "GET /query analyze=1"
grep -q 'rows=' "$workdir/q2.out" || { echo "FAIL: analyze output has no rows= annotations"; exit 1; }

echo "== query 3: burst against one admission slot must shed 429s"
burst_query='for $p in doc("auction.xml")//person, $q in doc("auction.xml")//person where $p/name = $q/name return $p/name'
curl_pids=()
for i in $(seq 1 24); do
    curl -s -o /dev/null -D "$workdir/hdr.$i" -G \
        --data-urlencode "q=$burst_query" "$base/query" &
    curl_pids+=("$!")
done
wait "${curl_pids[@]}"   # not bare wait: that would also wait on the daemon
codes=$(awk 'FNR==1{print $2}' "$workdir"/hdr.*)
n200=$(echo "$codes" | grep -c '^200$' || true)
n429=$(echo "$codes" | grep -c '^429$' || true)
nother=$(echo "$codes" | grep -vc '^\(200\|429\)$' || true)
echo "   burst: $n200 x 200, $n429 x 429, $nother other"
[ "$nother" -eq 0 ] || { echo "FAIL: unexpected statuses in burst: $codes"; exit 1; }
[ "$n200" -ge 1 ] || { echo "FAIL: burst produced no successful query"; exit 1; }
[ "$n429" -ge 1 ] || { echo "FAIL: burst against 1 slot produced no 429"; exit 1; }
hint=$(grep -ih '^retry-after:' "$workdir"/hdr.* | head -1 | tr -dc '0-9')
[ -n "$hint" ] && [ "$hint" -ge 1 ] || { echo "FAIL: 429 without a positive Retry-After"; exit 1; }
echo "   ok: Retry-After: $hint"

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon still running 10s after SIGTERM"
    exit 1
fi
wait "$daemon_pid" && drain_rc=0 || drain_rc=$?
[ "$drain_rc" -eq 0 ] || { echo "FAIL: daemon exited $drain_rc"; cat "$workdir/daemon.log"; exit 1; }
grep -q 'drained, bye' "$workdir/daemon.log" || { echo "FAIL: no drain confirmation in log"; cat "$workdir/daemon.log"; exit 1; }

echo "server smoke: all checks passed"
