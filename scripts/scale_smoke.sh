#!/usr/bin/env bash
# Out-of-core scale smoke test, used by the CI scale-smoke job and
# runnable locally: generate an XMark corpus, persist it as an on-disk
# columnar store (single-part and sharded), then run a query subset
# through the mmap'd store under a paging budget a quarter of the
# mapped corpus — i.e. the corpus is 4x larger than the ledger byte
# budget — and assert the output is byte-identical to the in-memory
# engine over the same corpus. The nightly lane re-runs this with a
# bigger corpus and more shards via the environment knobs:
#
#   SCALE_FACTOR   XMark scale factor          (default 0.04)
#   SCALE_SHARDS   shard count of the sharded store   (default 3)
#   SCALE_QUERIES  space-separated XMark query numbers (default "1 8 11 13 20")
set -euo pipefail

factor=${SCALE_FACTOR:-0.04}
shards=${SCALE_SHARDS:-3}
queries=${SCALE_QUERIES:-"1 8 11 13 20"}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/exrquy" ./cmd/exrquy
go build -o "$workdir/xmarkgen" ./cmd/xmarkgen

echo "== generate corpus (factor $factor) as single-part and $shards-shard stores"
"$workdir/xmarkgen" -factor "$factor" -store "$workdir/single"
"$workdir/xmarkgen" -factor "$factor" -store "$workdir/sharded" -shards "$shards"
shard_dirs=""
for k in $(seq 0 $((shards - 1))); do
    shard_dirs="${shard_dirs:+$shard_dirs,}$workdir/sharded/shard$k"
done

# The paging budget is a quarter of the on-disk corpus, so by
# construction the corpus is 4x the ledger byte budget the store pages
# under — queries must succeed anyway, by evicting pages, never by
# failing.
mapped=$(find "$workdir/single" -name '*.xrq' -printf '%s\n' | awk '{s+=$1} END{print s}')
budget=$((mapped / 4))
[ "$budget" -gt 0 ] || { echo "FAIL: empty store (mapped=$mapped)"; exit 1; }
[ "$mapped" -ge $((4 * budget)) ] || { echo "FAIL: corpus not >= 4x budget"; exit 1; }
echo "   corpus: $mapped bytes mapped, paging budget: $budget bytes"

run_diff() { # run_diff <label> <ref-file> <exrquy args...>
    local label=$1 ref=$2
    shift 2
    "$workdir/exrquy" "$@" >"$workdir/got.out"
    if ! cmp -s "$ref" "$workdir/got.out"; then
        echo "FAIL: $label differs from the in-memory engine"
        diff "$ref" "$workdir/got.out" | head -20
        exit 1
    fi
    echo "   ok: $label byte-identical"
}

for q in $queries; do
    echo "== XMark Q$q"
    # In-memory reference: same factor, same default generator seed,
    # no disk involved.
    "$workdir/exrquy" -xmark "$factor" -xq "$q" >"$workdir/ref.out"
    [ -s "$workdir/ref.out" ] || { echo "FAIL: empty reference output for Q$q"; exit 1; }
    run_diff "Q$q ooc" "$workdir/ref.out" \
        -store "$workdir/single" -store-bytes "$budget" -xq "$q"
    run_diff "Q$q shard$shards" "$workdir/ref.out" \
        -store "$shard_dirs" -store-bytes "$budget" -xq "$q"
done

# One walked-engine pass: the differential above runs bytecode-compiled
# plans; this asserts the tree-walking executor reads the same store
# identically too.
echo "== tree-walking executor"
"$workdir/exrquy" -compile=false -xmark "$factor" -xq 8 >"$workdir/ref.out"
run_diff "Q8 ooc walked" "$workdir/ref.out" \
    -compile=false -store "$workdir/single" -store-bytes "$budget" -xq 8

# Corruption with a standby replica must be healed, not served and not
# fatal: flip one byte in one replica of one part of a 2-replica store,
# and the query must still exit 0 with byte-identical output, recovered
# via failover to the healthy copy (store_failover_total >= 1).
echo "== replicated store recovers from a byte flip"
"$workdir/xmarkgen" -factor "$factor" -store "$workdir/replicated" -shards 2 -replicas 2
rep_dirs="$workdir/replicated/shard0,$workdir/replicated/shard1"
"$workdir/exrquy" -store "$rep_dirs" -xq 1 >"$workdir/rep-ref.out"
flipped=$(find "$workdir/replicated/shard0" -name '*.part000.xrq' | head -1)
printf '\xff' | dd of="$flipped" bs=1 count=1 seek=300 conv=notrunc status=none
"$workdir/exrquy" -store "$rep_dirs" -metrics -xq 1 \
    >"$workdir/rep-got.out" 2>"$workdir/rep-metrics.err" \
    || { echo "FAIL: replicated store did not recover (exit $?)"; cat "$workdir/rep-metrics.err"; exit 1; }
cmp -s "$workdir/rep-ref.out" "$workdir/rep-got.out" \
    || { echo "FAIL: recovered output differs"; exit 1; }
failovers=$(awk '/^store_failover_total /{print $2}' "$workdir/rep-metrics.err")
[ "${failovers:-0}" -ge 1 ] || { echo "FAIL: no failover recorded (store_failover_total=${failovers:-absent})"; exit 1; }
echo "   ok: byte flip healed by failover (store_failover_total=$failovers), output byte-identical"

# The scrubber must repair the flipped replica in place: quarantine the
# bad file, restore it from the healthy copy, and leave the directories
# mounting clean again.
echo "== scrubber quarantines and re-replicates the flipped replica"
"$workdir/exrquy" -store "$rep_dirs" -scrub 2>"$workdir/scrub.err"
grep -q '1 quarantined, 1 re-replicated' "$workdir/scrub.err" \
    || { echo "FAIL: scrub did not repair the replica"; cat "$workdir/scrub.err"; exit 1; }
[ -f "$flipped.quarantine" ] || { echo "FAIL: no quarantine file next to $flipped"; exit 1; }
[ -f "$flipped" ] || { echo "FAIL: replica not restored at $flipped"; exit 1; }
run_diff "Q1 after scrub repair" "$workdir/rep-ref.out" -store "$rep_dirs" -xq 1
echo "   ok: replica quarantined, restored, store mounts clean"

# Without a replica the same corruption must be diagnosed, not served:
# clobbering one byte in a part file's node-kind column (offset 300,
# past the 232-byte header; kind values are small, so 0xFF always
# breaks the section checksum) has to fail the mount with the
# corrupt-store exit code (6) — exit 6 on a replicated store means
# every replica of some part is bad — never produce output.
echo "== corrupt unreplicated store refuses to mount"
part=$(find "$workdir/single" -name '*.xrq' | head -1)
printf '\xff' | dd of="$part" bs=1 count=1 seek=300 conv=notrunc status=none
set +e
"$workdir/exrquy" -store "$workdir/single" -xq 1 >/dev/null 2>"$workdir/corrupt.err"
rc=$?
set -e
[ "$rc" -ne 0 ] || { echo "FAIL: corrupt store served a query"; exit 1; }
[ "$rc" -eq 6 ] || { echo "FAIL: corrupt store exit code $rc, want 6"; cat "$workdir/corrupt.err"; exit 1; }
echo "   ok: mount refused (exit 6)"

echo "scale smoke: all checks passed"
