#!/usr/bin/env bash
# Chaos smoke test, used by the CI chaos-smoke job and runnable locally:
# boot exrquyd with deterministic fault injection armed on /query
# (-chaos: forced 500s, connection resets, truncated bodies, injected
# latency) plus the watchdog, then drive it with loadgen's retrying +
# hedging client and assert the run ends clean — retries happened, the
# final outcomes were all 200/429, and the daemon still drains
# gracefully. This is the order-indifference claim exercised end to end:
# every retried or hedged query returns the same bytes, so a faulty wire
# is survivable without correctness loss.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/exrquyd" ./cmd/exrquyd
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== boot with faults armed"
"$workdir/exrquyd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -xmark 0.005 -watchdog 5s \
    -chaos 'seed=7,err500=11,reset=17,truncate=23:48,latency=5:2ms' \
    >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -s "$workdir/addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "FAIL: daemon exited during boot"; cat "$workdir/daemon.log"; exit 1; }
    sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "daemon never wrote addr file"; cat "$workdir/daemon.log"; exit 1; }
base="http://$(cat "$workdir/addr")"
healthy=""
for _ in $(seq 1 100); do
    if curl -sf --max-time 2 "$base/healthz" >/dev/null 2>&1; then
        healthy=1
        break
    fi
    sleep 0.1
done
[ -n "$healthy" ] || { echo "FAIL: /healthz not answering"; cat "$workdir/daemon.log"; exit 1; }
grep -q 'fault injection armed' "$workdir/daemon.log" || { echo "FAIL: daemon did not log the chaos warning"; exit 1; }
echo "   $base (chaos armed)"

echo "== retrying load against the faulty wire"
"$workdir/loadgen" -url "$base" -qps 40 -clients 8 -duration 5s \
    -queries 1,2,8,11 -retries 6 -retry-budget 2 -hedge -hedge-delay 10ms \
    | tee "$workdir/loadgen.out"

# loadgen exits non-zero when any final outcome was neither 200 nor 429,
# so reaching here already proves the retries absorbed every fault.
resilience_line=$(grep '^resilience:' "$workdir/loadgen.out")
retries=$(echo "$resilience_line" | sed -E 's/^resilience: ([0-9]+) retries.*/\1/')
[ "$retries" -ge 1 ] || { echo "FAIL: no retries under an armed fault plan: $resilience_line"; exit 1; }
echo "   ok: $resilience_line"

echo "== faults actually fired"
injected=$(curl -s "$base/metrics" | awk '$1 == "httpfault_injected_total" {print $2}')
[ -n "$injected" ] && [ "$injected" -ge 1 ] || { echo "FAIL: httpfault_injected_total = ${injected:-missing}"; exit 1; }
echo "   ok: $injected faults injected"

echo "== graceful shutdown still works after chaos"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon still running 10s after SIGTERM"
    exit 1
fi
wait "$daemon_pid" && drain_rc=0 || drain_rc=$?
[ "$drain_rc" -eq 0 ] || { echo "FAIL: daemon exited $drain_rc"; cat "$workdir/daemon.log"; exit 1; }
grep -q 'drained, bye' "$workdir/daemon.log" || { echo "FAIL: no drain confirmation"; cat "$workdir/daemon.log"; exit 1; }

echo "chaos smoke: all checks passed"
